"""CI benchmark smoke: a fixed shape set through the instrumented runtime.

Runs a small, fast (~seconds) workload on every CI push and gates on two
properties that guard the repo's constant factors:

1. **Amortization works.**  Repeated same-shape ``transpose_inplace`` calls
   through the process-wide plan cache must not be slower than per-call
   planning (cache hits must be > 0 and the cached median must beat the
   uncached median within a small tolerance).
2. **No perf regressions.**  The cached per-element time (best-of-N, the
   stable estimator for bandwidth-bound kernels; the median rides along in
   the report), *normalized by a same-size memcpy on the same machine*,
   must stay within ``--threshold``
   (default 25%) of the committed baseline
   (``benchmarks/results/BENCH_ci_baseline.json``) in **geometric mean
   across the shape set**, with a 2x-threshold per-shape catch-all for
   single-shape cliffs.  Normalizing by memcpy makes the gate portable
   across CI runner generations: absolute nanoseconds vary wildly between
   machines, the ratio to achievable bandwidth far less (the same trick the
   paper uses when reporting achieved fraction of peak); gating the mean
   keeps scheduler noise on one shape from failing the build.

If the baseline file is missing the regression gate is skipped gracefully
(first-run behavior); ``--update-baseline`` refreshes it.  The measured
snapshot is always written to ``BENCH_ci.json`` for the CI artifact upload.

Usage::

    python benchmarks/bench_ci_smoke.py                    # measure + gate
    python benchmarks/bench_ci_smoke.py --update-baseline  # refresh baseline
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from pathlib import Path
from time import perf_counter

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.core.transpose import transpose_inplace  # noqa: E402
from repro.runtime import metrics, plan_cache  # noqa: E402

SHAPES = [(256, 384), (384, 256), (512, 512), (500, 1000)]
REPEATS = 9
DEFAULT_OUT = "BENCH_ci.json"
BASELINE = Path(__file__).resolve().parent / "results" / "BENCH_ci_baseline.json"


def _timed_samples(fn, repeats: int) -> list[float]:
    fn()  # warm-up: page in buffers, JIT nothing, prime caches
    samples = []
    for _ in range(repeats):
        t0 = perf_counter()
        fn()
        samples.append(perf_counter() - t0)
    return samples


def measure_shape(m: int, n: int, repeats: int = REPEATS) -> dict:
    """Cached vs uncached vs memcpy medians for one shape (float64)."""
    elems = m * n
    proto = np.arange(elems, dtype=np.float64)
    dst = np.empty_like(proto)

    # Best-of for every estimator used by the gate: the machine's achievable
    # time is the *minimum*, everything above it is scheduler noise — medians
    # of millisecond-scale samples still swing 2x on busy CI runners.
    # Medians ride along in the report for eyeballing variance.
    memcpy_s = min(_timed_samples(lambda: np.copyto(dst, proto), 3 * repeats))

    # Uncached: planning (index-map construction) on every call.
    uncached_samples = _timed_samples(
        lambda: transpose_inplace(proto.copy(), m, n, use_plan_cache=False), repeats
    )

    # Cached: one warm-up miss builds the plan, then every call hits.
    cache = plan_cache.get_plan_cache()
    hits_before = cache.stats()["hits"]
    transpose_inplace(proto.copy(), m, n)
    cached_samples = _timed_samples(
        lambda: transpose_inplace(proto.copy(), m, n), repeats
    )
    hits = cache.stats()["hits"] - hits_before

    # The .copy() in each sample costs one memcpy; subtract it from both
    # transpose paths so the ratio reflects the transpose alone.
    uncached_s = max(min(uncached_samples) - memcpy_s, 1e-9)
    cached_s = max(min(cached_samples) - memcpy_s, 1e-9)
    cached_median_s = max(statistics.median(cached_samples) - memcpy_s, 1e-9)
    return {
        "m": m,
        "n": n,
        "elements": elems,
        "cache_hits": hits,
        "memcpy_ns_per_elem": memcpy_s / elems * 1e9,
        "uncached_ns_per_elem": uncached_s / elems * 1e9,
        "cached_ns_per_elem": cached_s / elems * 1e9,
        "cached_median_ns_per_elem": cached_median_s / elems * 1e9,
        "normalized": cached_s / max(memcpy_s, 1e-12),
    }


#: the mp backend's target workload: narrow dtype, where the per-element
#: Python-side index math dominates and the GIL serializes the thread backend
MP_SHAPE = (512, 768)
MP_DTYPE = "uint8"


def measure_mp_backend(repeats: int = 5) -> dict:
    """Thread vs process backend on the GIL-bound workload (best-of).

    Always measured and recorded; only *gated* (via ``--mp-floor``) when
    the machine has >= 4 real cores — on the 1-2 core runners the staging
    copies dominate and the comparison says nothing about the backend.
    """
    import os

    from repro.parallel import ParallelTranspose

    m, n = MP_SHAPE
    cores = os.cpu_count() or 1
    workers = min(4, cores)
    proto = np.arange(m * n, dtype=MP_DTYPE)

    def best(backend: str) -> float:
        with ParallelTranspose(workers, backend=backend) as pt:
            return min(_timed_samples(
                lambda: pt.transpose_inplace(proto.copy(), m, n), repeats
            ))

    threads_s = best("threads")
    mp_s = best("mp")
    return {
        "m": m,
        "n": n,
        "dtype": MP_DTYPE,
        "workers": workers,
        "cores": cores,
        "threads_s": threads_s,
        "mp_s": mp_s,
        "speedup": threads_s / max(mp_s, 1e-12),
        "gated": cores >= 4,
    }


def run(repeats: int, mp: bool = True) -> dict:
    metrics.reset()
    plan_cache.clear()
    plan_cache.get_plan_cache().reset_stats()
    results = [measure_shape(m, n, repeats) for m, n in SHAPES]
    report = {
        "schema": 1,
        "repeats": repeats,
        "results": results,
        "plan_cache": plan_cache.stats(),
        "metrics": metrics.registry.snapshot(),
    }
    if mp:
        report["mp_backend"] = measure_mp_backend()
    return report


def gate(report: dict, baseline: dict | None, threshold: float) -> list[str]:
    """Return a list of failure messages (empty = pass)."""
    failures = []
    for r in report["results"]:
        label = f"{r['m']}x{r['n']}"
        if r["cache_hits"] <= 0:
            failures.append(f"{label}: no plan-cache hits recorded")
        if r["cached_ns_per_elem"] > r["uncached_ns_per_elem"] * 1.10:
            failures.append(
                f"{label}: cached path ({r['cached_ns_per_elem']:.2f} ns/elem) "
                f"slower than per-call planning "
                f"({r['uncached_ns_per_elem']:.2f} ns/elem)"
            )
    if baseline is None:
        return failures
    base_by_shape = {(b["m"], b["n"]): b for b in baseline.get("results", [])}
    ratios = []
    for r in report["results"]:
        b = base_by_shape.get((r["m"], r["n"]))
        if b is None:
            continue
        ratio = r["normalized"] / max(b["normalized"], 1e-12)
        ratios.append(ratio)
        # Per-shape catch-all at double the aggregate threshold: loose enough
        # for single-shape scheduler noise, tight enough to flag a cliff.
        if ratio > 1.0 + 2 * threshold:
            failures.append(
                f"{r['m']}x{r['n']}: normalized per-element time "
                f"{r['normalized']:.3f} exceeds baseline "
                f"{b['normalized']:.3f} by more than {2 * threshold:.0%}"
            )
    if ratios:
        geomean = statistics.geometric_mean(ratios)
        print(f"normalized-vs-baseline geometric mean: {geomean:.3f}")
        if geomean > 1.0 + threshold:
            failures.append(
                f"geometric-mean normalized time regressed {geomean - 1.0:.0%} "
                f"against baseline (threshold {threshold:.0%})"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default=DEFAULT_OUT)
    parser.add_argument("--baseline", default=str(BASELINE))
    parser.add_argument("--threshold", type=float, default=0.25)
    parser.add_argument("--repeats", type=int, default=REPEATS)
    parser.add_argument("--update-baseline", action="store_true")
    parser.add_argument("--no-mp", action="store_true",
                        help="skip the mp-vs-threads backend measurement "
                        "(used by jobs that only need the cached-path gate)")
    parser.add_argument("--mp-floor", type=float, default=None,
                        help="fail unless mp/threads speedup >= this factor "
                        "(enforced only on machines with >= 4 cores)")
    args = parser.parse_args(argv)

    report = run(args.repeats, mp=not args.no_mp)
    Path(args.output).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    for r in report["results"]:
        print(
            f"{r['m']:>5} x {r['n']:<5} cached {r['cached_ns_per_elem']:7.2f} "
            f"ns/elem  uncached {r['uncached_ns_per_elem']:7.2f}  "
            f"memcpy {r['memcpy_ns_per_elem']:6.2f}  "
            f"normalized {r['normalized']:6.3f}  hits {r['cache_hits']}"
        )
    mp_report = report.get("mp_backend")
    if mp_report is not None:
        print(
            f"mp backend  {mp_report['m']}x{mp_report['n']} "
            f"{mp_report['dtype']}, {mp_report['workers']} workers "
            f"({mp_report['cores']} cores): threads "
            f"{mp_report['threads_s'] * 1e3:.2f} ms, mp "
            f"{mp_report['mp_s'] * 1e3:.2f} ms -> "
            f"{mp_report['speedup']:.2f}x"
            + ("" if mp_report["gated"] else "  [not gated: < 4 cores]")
        )
    print(f"wrote {args.output}")

    if args.update_baseline:
        Path(args.baseline).parent.mkdir(parents=True, exist_ok=True)
        Path(args.baseline).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n"
        )
        print(f"baseline updated: {args.baseline}")
        return 0

    baseline_path = Path(args.baseline)
    baseline = None
    if baseline_path.exists():
        baseline = json.loads(baseline_path.read_text())
    else:
        print(f"no baseline at {baseline_path}; regression gate skipped")

    failures = gate(report, baseline, args.threshold)
    if args.mp_floor is not None and mp_report is not None:
        if not mp_report["gated"]:
            print(
                f"mp floor skipped: {mp_report['cores']} core(s) < 4 "
                f"(measurement recorded, not gated)"
            )
        elif mp_report["speedup"] < args.mp_floor:
            failures.append(
                f"mp backend speedup {mp_report['speedup']:.2f}x < floor "
                f"{args.mp_floor:.2f}x on {mp_report['cores']} cores"
            )
    if failures:
        for msg in failures:
            print(f"FAIL: {msg}")
        return 1
    print("benchmark smoke gate: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
