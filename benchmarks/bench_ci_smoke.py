"""CI benchmark smoke: a fixed shape set through the instrumented runtime.

Runs a small, fast (~seconds) workload on every CI push and gates on two
properties that guard the repo's constant factors:

1. **Amortization works.**  Repeated same-shape ``transpose_inplace`` calls
   through the process-wide plan cache must not be slower than per-call
   planning (cache hits must be > 0 and the cached median must beat the
   uncached median within a small tolerance).
2. **No perf regressions.**  The cached per-element time (best-of-N, the
   stable estimator for bandwidth-bound kernels; the median rides along in
   the report), *normalized by a same-size memcpy on the same machine*,
   must stay within ``--threshold``
   (default 25%) of the committed baseline
   (``benchmarks/results/BENCH_ci_baseline.json``) in **geometric mean
   across the shape set**, with a 2x-threshold per-shape catch-all for
   single-shape cliffs.  Normalizing by memcpy makes the gate portable
   across CI runner generations: absolute nanoseconds vary wildly between
   machines, the ratio to achievable bandwidth far less (the same trick the
   paper uses when reporting achieved fraction of peak); gating the mean
   keeps scheduler noise on one shape from failing the build.

3. **The native backend is fast.**  When a C compiler is present, each
   shape is also measured through ``backend="native"`` (the compiled
   per-plan kernels of :mod:`repro.native`) two ways.  End-to-end: with
   ``P`` passes each moving ``2 * nbytes`` against a memcpy ceiling of
   ``2 * nbytes / memcpy_s``, the whole-transpose fraction reduces to
   ``P * memcpy_s / native_s`` per shape, and the composite across the
   set is time-weighted (``sum(P_i * memcpy_s_i) / sum(native_s_i)``) —
   recorded in the report and trajectory as the trend metric.  Per-pass:
   the same best-pass memcpy fraction ``repro profile --backend native``
   prints (the shuffle passes are pure permuted-memcpy loops; their
   fraction is the honest bandwidth headline, matching the profiler).
   ``--native-floor`` (default 0.5) fails the build when the best-pass
   fraction of any **DRAM-resident** shape (>= 2 MB buffer) dips below
   it — the kernels must stay memory-bound, not index-bound.  Smaller
   shapes are recorded but not gated: their same-size memcpy ceiling is
   cache-resident bandwidth, which no scatter pass can match and which
   says nothing about the kernels (the same record-don't-gate treatment
   the mp comparison gets on small machines).  On machines without a
   toolchain the native series is recorded as unavailable and the floor
   is skipped (the fallback path is gated separately by CI's no-compiler
   leg).  The native normalized times also participate in the baseline
   regression gate when the baseline carries them.

If the baseline file is missing the regression gate is skipped gracefully
(first-run behavior); ``--update-baseline`` refreshes it.  The measured
snapshot is always written to ``BENCH_ci.json`` for the CI artifact upload,
and every run appends one point to the committed benchmark **trajectory**
(``benchmarks/results/BENCH_ci_trajectory.json``): composite memcpy
fraction, per-backend ns/elem per shape, and the mp speedup — a
machine-readable history of how the repo's constant factors move over time.

Usage::

    python benchmarks/bench_ci_smoke.py                    # measure + gate
    python benchmarks/bench_ci_smoke.py --update-baseline  # refresh baseline
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from pathlib import Path
from time import perf_counter

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.core.transpose import transpose_inplace  # noqa: E402
from repro.runtime import metrics, plan_cache  # noqa: E402

SHAPES = [(256, 384), (384, 256), (512, 512), (500, 1000)]
REPEATS = 9
#: buffers at or above this are DRAM-resident on any CI runner; only those
#: shapes are gated by ``--native-floor`` (see module docstring, point 3)
DRAM_RESIDENT_BYTES = 2 * 1024 * 1024
DEFAULT_OUT = "BENCH_ci.json"
_RESULTS = Path(__file__).resolve().parent / "results"
BASELINE = _RESULTS / "BENCH_ci_baseline.json"
TRAJECTORY = _RESULTS / "BENCH_ci_trajectory.json"


def _timed_samples(fn, repeats: int) -> list[float]:
    fn()  # warm-up: page in buffers, JIT nothing, prime caches
    samples = []
    for _ in range(repeats):
        t0 = perf_counter()
        fn()
        samples.append(perf_counter() - t0)
    return samples


def _native_available() -> bool:
    from repro import native

    # Both halves matter: REPRO_NATIVE=0 must skip the native series (an
    # explicit backend="native" would silently fall back to numpy and the
    # "native" numbers would be interpreter numbers wearing the wrong label).
    return native.enabled() and native.available()


def measure_shape(m: int, n: int, repeats: int = REPEATS) -> dict:
    """Cached vs uncached vs native vs memcpy for one shape (float64).

    The cached/uncached series force ``backend="numpy"`` so their numbers
    stay comparable with pre-native baselines; the native series is its own
    set of fields (``None`` when no toolchain is available).
    """
    elems = m * n
    proto = np.arange(elems, dtype=np.float64)
    buf = proto.copy()  # persistent working buffer: pages stay faulted in

    # Best-of for every estimator used by the gate: the machine's achievable
    # time is the *minimum*, everything above it is scheduler noise — medians
    # of millisecond-scale samples still swing 2x on busy CI runners.
    # Medians ride along in the report for eyeballing variance.
    memcpy_s = min(_timed_samples(lambda: np.copyto(buf, proto), 3 * repeats))

    def sample(fn):
        np.copyto(buf, proto)  # reset costs exactly one memcpy (warm pages)
        fn()

    # Uncached: planning (index-map construction) on every call.
    uncached_samples = _timed_samples(
        lambda: sample(lambda: transpose_inplace(
            buf, m, n, use_plan_cache=False, backend="numpy"
        )),
        repeats,
    )

    # Cached: one warm-up miss builds the plan, then every call hits.
    cache = plan_cache.get_plan_cache()
    hits_before = cache.stats()["hits"]
    transpose_inplace(proto.copy(), m, n, backend="numpy")
    cached_samples = _timed_samples(
        lambda: sample(
            lambda: transpose_inplace(buf, m, n, backend="numpy")
        ),
        repeats,
    )
    hits = cache.stats()["hits"] - hits_before

    # Each sample resets the buffer with one warm-page memcpy; subtract it
    # so the ratio reflects the transpose alone.  (A fresh ``.copy()`` per
    # sample would charge allocation + page faults to the transpose, which
    # on small shapes drowns the kernel being measured.)
    uncached_s = max(min(uncached_samples) - memcpy_s, 1e-9)
    cached_s = max(min(cached_samples) - memcpy_s, 1e-9)
    cached_median_s = max(statistics.median(cached_samples) - memcpy_s, 1e-9)
    out = {
        "m": m,
        "n": n,
        "elements": elems,
        "cache_hits": hits,
        "memcpy_ns_per_elem": memcpy_s / elems * 1e9,
        "uncached_ns_per_elem": uncached_s / elems * 1e9,
        "cached_ns_per_elem": cached_s / elems * 1e9,
        "cached_median_ns_per_elem": cached_median_s / elems * 1e9,
        "normalized": cached_s / max(memcpy_s, 1e-12),
        "native_ns_per_elem": None,
        "native_normalized": None,
        "native_passes": None,
        "memcpy_fraction": None,
        "best_pass_memcpy_fraction": None,
        "fraction_gated": elems * proto.itemsize >= DRAM_RESIDENT_BYTES,
        "native_memcpy_s": memcpy_s,
        "native_s": None,
    }
    if not _native_available():
        return out

    # Native: same cached plan, compiled kernel execution.  The warm-up call
    # also pays the one-time compile, keeping it out of the samples.
    transpose_inplace(proto.copy(), m, n, backend="native")
    native_samples = _timed_samples(
        lambda: sample(
            lambda: transpose_inplace(buf, m, n, backend="native")
        ),
        repeats,
    )
    native_s = max(min(native_samples) - memcpy_s, 1e-9)
    plan = plan_cache.get_single_plan(m, n, "C", "auto", proto.dtype)
    passes = len(plan._steps)

    # Best-pass fraction, measured exactly the way `repro profile` does
    # (traced per-pass bandwidth over a same-size memcpy ceiling).
    from repro.trace.profile import profile_shape

    prof = profile_shape(m, n, repeats=min(repeats, 5), backend="native")
    best_frac = max((p.memcpy_frac for p in prof.passes), default=0.0)

    out.update(
        native_ns_per_elem=native_s / elems * 1e9,
        native_normalized=native_s / max(memcpy_s, 1e-12),
        native_passes=passes,
        # P passes each move 2*nbytes against a 2*nbytes/memcpy_s ceiling,
        # so the achieved-fraction algebra collapses to P * memcpy_s / t.
        memcpy_fraction=passes * memcpy_s / native_s,
        best_pass_memcpy_fraction=best_frac,
        native_s=native_s,
    )
    return out


#: the mp backend's target workload: narrow dtype, where the per-element
#: Python-side index math dominates and the GIL serializes the thread backend
MP_SHAPE = (512, 768)
MP_DTYPE = "uint8"


def measure_mp_backend(repeats: int = 5) -> dict:
    """Thread vs process backend on the GIL-bound workload (best-of).

    Always measured and recorded; only *gated* (via ``--mp-floor``) when
    the machine has >= 4 real cores — on the 1-2 core runners the staging
    copies dominate and the comparison says nothing about the backend.
    """
    import os

    from repro.parallel import ParallelTranspose

    m, n = MP_SHAPE
    cores = os.cpu_count() or 1
    workers = min(4, cores)
    proto = np.arange(m * n, dtype=MP_DTYPE)

    def best(backend: str) -> float:
        # native="off": this gate compares the *interpreter* paths — the
        # thread backend's compiled kernels would swamp the mp comparison
        # (they release the GIL outright, which is a different question).
        with ParallelTranspose(workers, backend=backend, native="off") as pt:
            return min(_timed_samples(
                lambda: pt.transpose_inplace(proto.copy(), m, n), repeats
            ))

    threads_s = best("threads")
    mp_s = best("mp")
    return {
        "m": m,
        "n": n,
        "dtype": MP_DTYPE,
        "workers": workers,
        "cores": cores,
        "threads_s": threads_s,
        "mp_s": mp_s,
        "speedup": threads_s / max(mp_s, 1e-12),
        "gated": cores >= 4,
    }


def composite_memcpy_fraction(results: list[dict]) -> float | None:
    """Time-weighted composite fraction across the shape set.

    ``sum(P_i * memcpy_s_i) / sum(native_s_i)``: each shape contributes in
    proportion to the time the kernels actually spend on it, so a slow
    large shape cannot hide behind a fast small one.  ``None`` when no
    shape has a native measurement.
    """
    num = den = 0.0
    for r in results:
        if r.get("native_s") is None:
            continue
        num += r["native_passes"] * r["native_memcpy_s"]
        den += r["native_s"]
    return num / den if den > 0 else None


def run(repeats: int, mp: bool = True) -> dict:
    metrics.reset()
    plan_cache.clear()
    plan_cache.get_plan_cache().reset_stats()
    results = [measure_shape(m, n, repeats) for m, n in SHAPES]
    report = {
        "schema": 2,
        "repeats": repeats,
        "native_available": _native_available(),
        "results": results,
        "composite_memcpy_fraction": composite_memcpy_fraction(results),
        "plan_cache": plan_cache.stats(),
        "metrics": metrics.registry.snapshot(),
    }
    if mp:
        report["mp_backend"] = measure_mp_backend()
    return report


def gate(
    report: dict,
    baseline: dict | None,
    threshold: float,
    native_floor: float | None = None,
) -> list[str]:
    """Return a list of failure messages (empty = pass)."""
    failures = []
    for r in report["results"]:
        label = f"{r['m']}x{r['n']}"
        if r["cache_hits"] <= 0:
            failures.append(f"{label}: no plan-cache hits recorded")
        if r["cached_ns_per_elem"] > r["uncached_ns_per_elem"] * 1.10:
            failures.append(
                f"{label}: cached path ({r['cached_ns_per_elem']:.2f} ns/elem) "
                f"slower than per-call planning "
                f"({r['uncached_ns_per_elem']:.2f} ns/elem)"
            )

    # Native memcpy-fraction floor: the compiled kernels must stay
    # memory-bound.  Gated on the best-pass fraction of DRAM-resident
    # shapes (see module docstring); skipped (with a note, not a failure)
    # when no toolchain is present — the fallback path is exercised by
    # CI's no-compiler leg.
    if native_floor is not None:
        if not report.get("native_available"):
            print("native memcpy-fraction floor skipped: no toolchain")
        else:
            composite = report.get("composite_memcpy_fraction")
            if composite is not None:
                print(
                    f"native composite memcpy fraction: {composite:.3f} "
                    f"(trend metric, not gated)"
                )
            for r in report["results"]:
                frac = r.get("best_pass_memcpy_fraction")
                if frac is None:
                    continue
                label = f"{r['m']}x{r['n']}"
                gated = r.get("fraction_gated", False)
                print(
                    f"{label}: best-pass memcpy fraction {frac:.3f} "
                    f"(floor {native_floor:.2f})"
                    + ("" if gated else "  [not gated: cache-resident]")
                )
                if gated and frac < native_floor:
                    failures.append(
                        f"{label}: best-pass memcpy fraction {frac:.3f} "
                        f"below floor {native_floor:.2f}"
                    )

    if baseline is None:
        return failures
    base_by_shape = {(b["m"], b["n"]): b for b in baseline.get("results", [])}
    ratios = []
    native_ratios = []
    for r in report["results"]:
        b = base_by_shape.get((r["m"], r["n"]))
        if b is None:
            continue
        ratio = r["normalized"] / max(b["normalized"], 1e-12)
        ratios.append(ratio)
        # Per-shape catch-all at double the aggregate threshold: loose enough
        # for single-shape scheduler noise, tight enough to flag a cliff.
        if ratio > 1.0 + 2 * threshold:
            failures.append(
                f"{r['m']}x{r['n']}: normalized per-element time "
                f"{r['normalized']:.3f} exceeds baseline "
                f"{b['normalized']:.3f} by more than {2 * threshold:.0%}"
            )
        # Native regression rides the same gate once both sides measured it.
        if (
            r.get("native_normalized") is not None
            and b.get("native_normalized") is not None
        ):
            nratio = r["native_normalized"] / max(b["native_normalized"], 1e-12)
            native_ratios.append(nratio)
            if nratio > 1.0 + 2 * threshold:
                failures.append(
                    f"{r['m']}x{r['n']}: native normalized time "
                    f"{r['native_normalized']:.3f} exceeds baseline "
                    f"{b['native_normalized']:.3f} by more than "
                    f"{2 * threshold:.0%}"
                )
    if ratios:
        geomean = statistics.geometric_mean(ratios)
        print(f"normalized-vs-baseline geometric mean: {geomean:.3f}")
        if geomean > 1.0 + threshold:
            failures.append(
                f"geometric-mean normalized time regressed {geomean - 1.0:.0%} "
                f"against baseline (threshold {threshold:.0%})"
            )
    if native_ratios:
        ngeomean = statistics.geometric_mean(native_ratios)
        print(f"native normalized-vs-baseline geometric mean: {ngeomean:.3f}")
        if ngeomean > 1.0 + threshold:
            failures.append(
                f"geometric-mean native normalized time regressed "
                f"{ngeomean - 1.0:.0%} against baseline "
                f"(threshold {threshold:.0%})"
            )
    return failures


def append_trajectory(report: dict, path: Path) -> dict:
    """Append one measurement point to the committed benchmark trajectory.

    The trajectory is a JSON list, one entry per recorded run: composite
    memcpy fraction, per-backend ns/elem per shape, and the mp speedup.
    CI uploads it as an artifact; maintainers commit points from reference
    machines so the history stays comparable.
    """
    import datetime
    import os

    mp_report = report.get("mp_backend")
    entry = {
        "date": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "commit": os.environ.get("GITHUB_SHA"),
        "native_available": report["native_available"],
        "composite_memcpy_fraction": report["composite_memcpy_fraction"],
        "mp_speedup": mp_report["speedup"] if mp_report else None,
        "shapes": {
            f"{r['m']}x{r['n']}": {
                "cached_ns_per_elem": r["cached_ns_per_elem"],
                "native_ns_per_elem": r["native_ns_per_elem"],
                "memcpy_ns_per_elem": r["memcpy_ns_per_elem"],
                "memcpy_fraction": r["memcpy_fraction"],
                "best_pass_memcpy_fraction": r["best_pass_memcpy_fraction"],
            }
            for r in report["results"]
        },
    }
    history = []
    if path.exists():
        history = json.loads(path.read_text())
        if not isinstance(history, list):
            raise SystemExit(f"trajectory file {path} is not a JSON list")
    history.append(entry)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(history, indent=2, sort_keys=True) + "\n")
    return entry


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default=DEFAULT_OUT)
    parser.add_argument("--baseline", default=str(BASELINE))
    parser.add_argument("--threshold", type=float, default=0.25)
    parser.add_argument("--repeats", type=int, default=REPEATS)
    parser.add_argument("--update-baseline", action="store_true")
    parser.add_argument("--no-mp", action="store_true",
                        help="skip the mp-vs-threads backend measurement "
                        "(used by jobs that only need the cached-path gate)")
    parser.add_argument("--mp-floor", type=float, default=None,
                        help="fail unless mp/threads speedup >= this factor "
                        "(enforced only on machines with >= 4 cores)")
    parser.add_argument("--native-floor", type=float, default=0.5,
                        help="fail unless the native best-pass memcpy "
                        "fraction of every DRAM-resident shape >= this "
                        "value (skipped without a toolchain); <= 0 "
                        "disables the floor")
    parser.add_argument("--trajectory", default=str(TRAJECTORY),
                        help="benchmark trajectory file to append to")
    parser.add_argument("--no-trajectory", action="store_true",
                        help="skip the trajectory append (scratch runs)")
    args = parser.parse_args(argv)

    report = run(args.repeats, mp=not args.no_mp)
    Path(args.output).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    for r in report["results"]:
        native = (
            f"native {r['native_ns_per_elem']:6.2f} "
            f"(frac {r['memcpy_fraction']:.3f})"
            if r["native_ns_per_elem"] is not None
            else "native      --"
        )
        print(
            f"{r['m']:>5} x {r['n']:<5} cached {r['cached_ns_per_elem']:7.2f} "
            f"ns/elem  uncached {r['uncached_ns_per_elem']:7.2f}  "
            f"memcpy {r['memcpy_ns_per_elem']:6.2f}  {native}  "
            f"normalized {r['normalized']:6.3f}  hits {r['cache_hits']}"
        )
    mp_report = report.get("mp_backend")
    if mp_report is not None:
        print(
            f"mp backend  {mp_report['m']}x{mp_report['n']} "
            f"{mp_report['dtype']}, {mp_report['workers']} workers "
            f"({mp_report['cores']} cores): threads "
            f"{mp_report['threads_s'] * 1e3:.2f} ms, mp "
            f"{mp_report['mp_s'] * 1e3:.2f} ms -> "
            f"{mp_report['speedup']:.2f}x"
            + ("" if mp_report["gated"] else "  [not gated: < 4 cores]")
        )
    print(f"wrote {args.output}")
    if not args.no_trajectory:
        append_trajectory(report, Path(args.trajectory))
        print(f"trajectory appended: {args.trajectory}")

    if args.update_baseline:
        Path(args.baseline).parent.mkdir(parents=True, exist_ok=True)
        Path(args.baseline).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n"
        )
        print(f"baseline updated: {args.baseline}")
        return 0

    baseline_path = Path(args.baseline)
    baseline = None
    if baseline_path.exists():
        baseline = json.loads(baseline_path.read_text())
    else:
        print(f"no baseline at {baseline_path}; regression gate skipped")

    native_floor = args.native_floor if args.native_floor > 0 else None
    failures = gate(report, baseline, args.threshold, native_floor)
    if args.mp_floor is not None and mp_report is not None:
        if not mp_report["gated"]:
            print(
                f"mp floor skipped: {mp_report['cores']} core(s) < 4 "
                f"(measurement recorded, not gated)"
            )
        elif mp_report["speedup"] < args.mp_floor:
            failures.append(
                f"mp backend speedup {mp_report['speedup']:.2f}x < floor "
                f"{args.mp_floor:.2f}x on {mp_report['cores']} cores"
            )
    if failures:
        for msg in failures:
            print(f"FAIL: {msg}")
        return 1
    print("benchmark smoke gate: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
