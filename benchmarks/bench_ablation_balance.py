"""Ablation — parallel load balance: cycles vs the decomposition (Section 1).

"Traditional cycle following algorithms ... can be difficult to parallelize
due to poorly distributed cycle lengths; our decomposed transposition is
straightforward to parallelize, with perfect load balancing."

Quantified: over a shape population, the best-possible 8-way speedup of a
cycle-per-processor schedule (bounded by the largest cycle) versus the
decomposition's equal-cost row/column units.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import decomposition_task_profile, transposition_cycle_profile

from conftest import ascii_hist, random_dims, write_report

SEED = 60
N_SAMPLES = 40
P = 8  # processors


@pytest.mark.benchmark(group="ablation-balance")
def test_cycle_profile_cost(benchmark):
    benchmark.pedantic(
        lambda: transposition_cycle_profile(96, 130), rounds=3, iterations=1
    )


def test_report_ablation_balance(benchmark, results_dir):
    dims = random_dims(np.random.default_rng(SEED), N_SAMPLES, 40, 160)

    def build():
        cyc_bounds, task_bounds, largest = [], [], []
        for m, n in dims:
            cyc = transposition_cycle_profile(m, n)
            task = decomposition_task_profile(m, n)
            if cyc.n_units == 0:
                continue
            cyc_bounds.append(cyc.speedup_bound(P))
            task_bounds.append(task.speedup_bound(P))
            largest.append(cyc.largest_fraction)
        return cyc_bounds, task_bounds, largest

    cyc_bounds, task_bounds, largest = benchmark.pedantic(
        build, rounds=1, iterations=1
    )

    lines = [
        f"Ablation: {P}-way parallel speedup bounds over {len(cyc_bounds)} shapes",
        "(work-unit = one cycle vs one row/column permutation)",
        "",
        "-- cycle following: achievable speedup bound --",
        ascii_hist(cyc_bounds, bins=8, unit="x"),
        "",
        "-- decomposition: achievable speedup bound --",
        ascii_hist(task_bounds, bins=8, unit="x"),
        "",
        f"cycle following: median bound {np.median(cyc_bounds):.2f}x, "
        f"worst {min(cyc_bounds):.2f}x; largest single cycle holds up to "
        f"{max(largest)*100:.0f}% of all work",
        f"decomposition: median bound {np.median(task_bounds):.2f}x, "
        f"worst {min(task_bounds):.2f}x",
    ]
    write_report(results_dir, "ablation_balance", "\n".join(lines))

    # the decomposition's worst case beats cycle following's worst case
    assert min(task_bounds) > min(cyc_bounds)
    # and is near-perfect in the median
    assert float(np.median(task_bounds)) > 0.9 * P
    # cycle following's bound is erratic: some shapes cap well below P
    assert min(cyc_bounds) < 0.6 * P
