"""Sharding benchmark: aggregate serving throughput, 1 shard vs N.

Runs the in-process loadtest twice against identical workloads — once on
a single-shard server, once on an ``N``-shard server behind the
consistent-hash router (``repro.serve.router``) — and reports the
scaling ratio plus per-shard shape affinity.  The workload is spread one
shape per shard (derived from the live ring, exactly like
``repro loadtest --shards``), so the sharded number measures all ``N``
stacks instead of whichever shard one shape happens to hash to.

Reported series:

* ``single_rps``   — single-shard achieved matrices/s
* ``sharded_rps``  — N-shard aggregate matrices/s (the gated number)
* ``scaling``      — ``sharded_rps / single_rps``
* ``affinity_min`` — the worst shard's routing-affinity rate (requests
  that hit a shape the shard had already planned); the per-shard
  plan/kernel cache-hotness proxy

``--floor R`` fails the run when ``scaling < R * shards``.  The floor is
enforced only when the machine has at least as many cores as shards —
per-shard scaling is unfalsifiable on fewer cores (the same policy the
mp bench gate uses).  Each run appends one point to the committed
trajectory (``benchmarks/results/BENCH_sharding_trajectory.json``)
unless ``--no-trajectory``.

Usage::

    python benchmarks/bench_sharding.py                       # report only
    python benchmarks/bench_sharding.py --shards 4 --floor 0.8    # CI gate
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.cli import _shard_aligned_shapes  # noqa: E402
from repro.serve import ServeConfig, TransposeServer  # noqa: E402
from repro.serve.loadgen import run_loadtest  # noqa: E402

_RESULTS = Path(__file__).resolve().parent / "results"
TRAJECTORY = _RESULTS / "BENCH_sharding_trajectory.json"
BASE_M, BASE_N = 256, 384
DTYPE = "uint8"


def run_once(n_shards: int, shapes, args) -> tuple[float, dict]:
    """One loadtest against a fresh n-shard server; returns
    (achieved matrices/s, router stats)."""
    server = TransposeServer(ServeConfig(
        port=0,
        workers=args.workers,
        queue_size=args.queue_size,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        shards=n_shards,
    )).start()
    try:
        report = run_loadtest(
            server.url,
            rate=args.rate,
            duration_s=args.duration,
            shapes=shapes,
            dtype=DTYPE,
            tiles=args.tiles,
            connections=args.connections,
            reference=False,
            verify_every=args.verify_every,
            interim_every_s=0.0,
        )
        stats = server.router.stats()
    finally:
        summary = server.shutdown()
    if summary["dropped"]:
        raise SystemExit(
            f"{summary['dropped']} accepted requests dropped on the "
            f"{n_shards}-shard run — the numbers are not comparable"
        )
    return report.achieved_rps, stats


def measure(args) -> dict:
    # Derive the shard-aligned workload from a throwaway router: shapes
    # are a pure function of the ring, which depends only on shard count.
    probe = TransposeServer(ServeConfig(port=0, shards=args.shards))
    shapes = _shard_aligned_shapes(probe.router, BASE_M, BASE_N, DTYPE)
    single_rps, _ = run_once(1, shapes, args)
    sharded_rps, stats = run_once(args.shards, shapes, args)
    per_shard = stats["per_shard"]
    affinity_min = min(
        (s["affinity_rate"] for s in per_shard if s["routed"]), default=0.0
    )
    return {
        "shards": args.shards,
        "workers_per_shard": args.workers,
        "shapes": [f"{s.m}x{s.n}" for s in shapes],
        "dtype": DTYPE,
        "tiles": args.tiles,
        "rate": args.rate,
        "duration_s": args.duration,
        "single_rps": single_rps,
        "sharded_rps": sharded_rps,
        "scaling": sharded_rps / max(single_rps, 1e-12),
        "affinity_min": affinity_min,
        "per_shard": per_shard,
    }


def append_trajectory(report: dict, path: Path) -> None:
    """One point per run, same shape as the other bench trajectories."""
    import datetime

    entry = {
        "date": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "commit": os.environ.get("GITHUB_SHA"),
        "shards": report["shards"],
        "single_rps": report["single_rps"],
        "sharded_rps": report["sharded_rps"],
        "scaling": report["scaling"],
        "affinity_min": report["affinity_min"],
    }
    history = []
    if path.exists():
        history = json.loads(path.read_text())
        if not isinstance(history, list):
            raise SystemExit(f"trajectory file {path} is not a JSON list")
    history.append(entry)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(history, indent=2, sort_keys=True) + "\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--workers", type=int, default=1,
                        help="workers per shard (1 isolates router scaling "
                        "from pool scaling)")
    parser.add_argument("--rate", type=float, default=4000.0,
                        help="offered matrices/s (set well above single-"
                        "shard capacity so both runs saturate)")
    parser.add_argument("--duration", type=float, default=5.0)
    parser.add_argument("--tiles", type=int, default=4)
    parser.add_argument("--connections", type=int, default=16)
    parser.add_argument("--queue-size", type=int, default=512)
    parser.add_argument("--max-batch", type=int, default=32)
    parser.add_argument("--max-wait-ms", type=float, default=0.5)
    parser.add_argument("--verify-every", type=int, default=8)
    parser.add_argument("--floor", type=float, default=None,
                        help="fail when scaling < floor * shards (CI uses "
                        "0.8; enforced only on >= --shards cores)")
    parser.add_argument("--min-affinity", type=float, default=None,
                        help="fail when the worst shard's affinity rate is "
                        "below this (CI uses 0.9)")
    parser.add_argument("--output", default="BENCH_sharding.json")
    parser.add_argument("--trajectory", default=str(TRAJECTORY))
    parser.add_argument("--no-trajectory", action="store_true",
                        help="skip the trajectory append (scratch runs)")
    args = parser.parse_args(argv)
    if args.shards < 2:
        raise SystemExit("--shards must be >= 2 (1-vs-N is the experiment)")

    report = measure(args)
    Path(args.output).write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n"
    )
    print(
        f"workload: {','.join(report['shapes'])} {DTYPE} "
        f"x{report['tiles']} tiles, offered {args.rate:.0f} matrices/s "
        f"for {args.duration:.0f}s"
    )
    print(f"single shard : {report['single_rps']:8.1f} matrices/s")
    print(
        f"{report['shards']} shards     : {report['sharded_rps']:8.1f} "
        f"matrices/s  -> scaling {report['scaling']:.2f}x, "
        f"worst-shard affinity {report['affinity_min']:.1%}"
    )
    print(f"wrote {args.output}")
    if not args.no_trajectory:
        append_trajectory(report, Path(args.trajectory))
        print(f"trajectory appended: {args.trajectory}")

    failed = False
    cores = os.cpu_count() or 1
    if args.floor is not None:
        target = args.floor * args.shards
        if cores < args.shards:
            print(
                f"scaling gate skipped: {cores} core(s) < "
                f"{args.shards} shards (floor {target:.2f}x unfalsifiable)"
            )
        elif report["scaling"] < target:
            print(
                f"FAIL: scaling {report['scaling']:.2f}x < floor "
                f"{target:.2f}x ({args.floor:.2f} x {args.shards} shards)"
            )
            failed = True
        else:
            print(
                f"scaling gate: PASS ({report['scaling']:.2f}x >= "
                f"{target:.2f}x)"
            )
    if args.min_affinity is not None:
        if report["affinity_min"] < args.min_affinity:
            print(
                f"FAIL: worst-shard affinity {report['affinity_min']:.1%} "
                f"< floor {args.min_affinity:.1%}"
            )
            failed = True
        else:
            print(
                f"affinity gate: PASS ({report['affinity_min']:.1%} >= "
                f"{args.min_affinity:.1%})"
            )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
