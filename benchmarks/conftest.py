"""Shared infrastructure for the paper-reproduction benchmarks.

Every ``bench_*`` file regenerates one table or figure from the paper's
evaluation.  Conventions:

* micro-benchmarks (the ``benchmark`` fixture on representative shapes)
  feed pytest-benchmark's own statistics table;
* each file's ``test_report_*`` computes the full population/series the
  paper reports — inside ``benchmark.pedantic(rounds=1)`` so it runs under
  ``--benchmark-only`` — and writes the paper-style rows to
  ``benchmarks/results/<name>.txt`` (also echoed to stdout).

Populations are scaled down from the paper's (which used seconds-per-GB
GPU/CPU kernels on 1000+ matrices); the scaling is recorded in
EXPERIMENTS.md next to each result.
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np
import pytest

from repro.reporting import ascii_heatmap, ascii_hist  # noqa: F401  (re-exported for benches)

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_report(results_dir: Path, name: str, text: str) -> None:
    """Print a report and persist it under benchmarks/results/."""
    print(f"\n===== {name} =====\n{text}")
    (results_dir / f"{name}.txt").write_text(text + "\n")


def write_csv(results_dir: Path, name: str, header: list, rows) -> None:
    """Persist a machine-readable series next to the text report."""
    lines = [",".join(str(h) for h in header)]
    for row in rows:
        lines.append(",".join(f"{v}" for v in row))
    (results_dir / f"{name}.csv").write_text("\n".join(lines) + "\n")


def random_dims(
    rng: np.random.Generator, k: int, lo: int, hi: int
) -> list[tuple[int, int]]:
    """``k`` random (m, n) pairs, dims uniform in [lo, hi) — the paper's
    population scheme."""
    return [
        (int(rng.integers(lo, hi)), int(rng.integers(lo, hi))) for _ in range(k)
    ]


def time_call(fn, *args) -> float:
    """Wall-clock one call (seconds)."""
    t0 = time.perf_counter()
    fn(*args)
    return time.perf_counter() - t0


def throughput_gbps(m: int, n: int, itemsize: int, seconds: float) -> float:
    """Eq. 37 in GB/s."""
    return 2.0 * m * n * itemsize / seconds / 1e9
