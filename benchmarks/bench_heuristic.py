"""Section 5.2's combination claim — the C2R/R2C heuristic.

"Since the C2R and R2C algorithms can both be used for transposing any
array, but their performance characteristics differ, we combined them using
a simple heuristic: if m > n, use the C2R algorithm, otherwise use the R2C
algorithm.  This improves the performance of our transposition routine and
makes it more efficient than either the C2R algorithm or the R2C algorithm
on their own."

Verified on the K20c model over a population with skewed aspect ratios
(where the fast bands live), and the per-sample property that the heuristic
never picks the slower side by more than model noise.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpusim.cost import auto_cost, c2r_cost, r2c_cost

from conftest import write_report

SEED = 52
N_SAMPLES = 60


def _population():
    rng = np.random.default_rng(SEED)
    dims = []
    for _ in range(N_SAMPLES):
        # mix skewed and square-ish aspect ratios (log-uniform dims)
        m = int(np.exp(rng.uniform(np.log(1000), np.log(25000))))
        n = int(np.exp(rng.uniform(np.log(1000), np.log(25000))))
        dims.append((m, n))
    return dims


@pytest.mark.benchmark(group="heuristic")
def test_auto_cost_point(benchmark):
    benchmark.pedantic(lambda: auto_cost(20000, 1500, 8), rounds=3, iterations=1)


def test_report_heuristic(benchmark, results_dir):
    dims = _population()

    def build():
        rows = []
        for m, n in dims:
            rows.append(
                (
                    m,
                    n,
                    c2r_cost(m, n, 8).throughput_gbps,
                    r2c_cost(m, n, 8).throughput_gbps,
                    auto_cost(m, n, 8).throughput_gbps,
                )
            )
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)

    c2r = np.array([r[2] for r in rows])
    r2c = np.array([r[3] for r in rows])
    auto = np.array([r[4] for r in rows])
    lines = [
        f"Section 5.2 heuristic (m > n -> C2R else R2C), {N_SAMPLES} modeled",
        "arrays with log-uniform dims in [1000, 25000], float64",
        "",
        f"median C2R alone:  {np.median(c2r):6.2f} GB/s",
        f"median R2C alone:  {np.median(r2c):6.2f} GB/s",
        f"median heuristic:  {np.median(auto):6.2f} GB/s",
        "",
        f"heuristic picked the faster side on "
        f"{int(np.sum(auto >= np.maximum(c2r, r2c) - 0.5))}/{N_SAMPLES} samples",
        "",
        "worst skew cases:",
    ]
    skewed = sorted(rows, key=lambda r: min(r[0] / r[1], r[1] / r[0]))[:5]
    for m, n, c, r, a in skewed:
        lines.append(
            f"  {m:>6} x {n:<6} c2r {c:5.1f}  r2c {r:5.1f}  heuristic {a:5.1f}"
        )
    write_report(results_dir, "heuristic", "\n".join(lines))

    # the paper's claim is about the aggregate: the combined routine is
    # more efficient than either algorithm alone.  (Per-sample winners are
    # not fully predicted by m > n: the gather maps' modular-arithmetic
    # locality differs between the two views, which the model captures.)
    assert float(np.median(auto)) >= float(np.median(c2r)) - 1e-9
    assert float(np.median(auto)) >= float(np.median(r2c)) - 1e-9
    # and it lands on the faster side for the clear majority of shapes
    assert int(np.sum(auto >= np.maximum(c2r, r2c) - 0.5)) > 0.6 * len(rows)
