"""Ablation — the §4.5 on-chip row shuffle.

"each streaming multiprocessor on the NVIDIA Tesla K20c processor contains
256 kB of register file — in practice we found we could use this storage to
process rows with up to 29440 64-bit elements in a single pass."

Executes both row-shuffle kernels through simulated memory and prices their
traffic: the single-pass (on-chip) version touches each element twice at
full coalescing; the two-pass fallback touches it four times, half of them
scattered.  The crossover is what the capacity model
(`repro.cache.onchip.OnChipModel`) encodes for the cost model.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache.onchip import OnChipModel
from repro.core.indexing import Decomposition
from repro.gpusim import TESLA_K20C, TransactionAnalyzer
from repro.simd.block import ThreadBlock, onchip_row_shuffle, twopass_row_shuffle
from repro.simd.memory import SimulatedMemory

from conftest import write_report

# Coprime-ish shapes whose d'^{-1} gather genuinely scatters (for m = 8 and
# power-of-two rows the gather happens to be sector-perfect — also real, and
# shown as the last row).
CASES = [(9, 255), (9, 1024), (7, 4097), (13, 16381), (8, 1024)]


def _traffic(m: int, n: int, onchip: bool) -> tuple[float, float]:
    """(DRAM bytes, useful bytes) for one row shuffle of length n."""
    mem = SimulatedMemory(m * n, itemsize=8)
    mem.data[:] = np.arange(m * n)
    dec = Decomposition.of(m, n)
    mem.clear_trace()
    traces = [mem.trace]
    if onchip:
        onchip_row_shuffle(mem, 2, dec, ThreadBlock(capacity_words=n))
    else:
        scratch = SimulatedMemory(n, itemsize=8)
        scratch.clear_trace()
        traces.append(scratch.trace)
        twopass_row_shuffle(mem, scratch, 2, dec, ThreadBlock(capacity_words=n))
    sector = TransactionAnalyzer(TESLA_K20C.sector_bytes)
    line = TransactionAnalyzer(TESLA_K20C.line_bytes)
    dram = 0.0
    for trace in traces:
        for rec in trace:
            if rec.kind == "load":
                dram += sector.count_warp(rec.byte_addresses, rec.access_bytes) * 32
            else:
                dram += line.count_warp(rec.byte_addresses, rec.access_bytes) * 128
    return dram, 2.0 * n * 8


@pytest.mark.benchmark(group="ablation-onchip")
def test_onchip_kernel(benchmark):
    mem = SimulatedMemory(9 * 1024, itemsize=8)
    dec = Decomposition.of(9, 1024)
    benchmark.pedantic(
        lambda: onchip_row_shuffle(mem, 1, dec, ThreadBlock(capacity_words=1024)),
        rounds=3,
        iterations=1,
    )


def test_report_ablation_onchip(benchmark, results_dir):
    def build():
        rows = []
        for m, n in CASES:
            d1, useful = _traffic(m, n, onchip=True)
            d2, _ = _traffic(m, n, onchip=False)
            rows.append((m, n, useful, d1, d2))
        return rows

    rows = benchmark.pedantic(build, rounds=1, iterations=1)

    oc = OnChipModel()
    lines = [
        "Ablation: single-pass (on-chip) vs two-pass row shuffle (Section 4.5)",
        f"(one row of n float64 elements; useful traffic = 2n*8 bytes)",
        "",
        f"{'m':>4} {'n':>7} {'useful kB':>10} {'1-pass kB':>10} "
        f"{'2-pass kB':>10} {'ratio':>6}",
    ]
    for m, n, useful, d1, d2 in rows:
        lines.append(
            f"{m:>4} {n:>7} {useful/1e3:>10.1f} {d1/1e3:>10.1f} "
            f"{d2/1e3:>10.1f} {d2/d1:>6.2f}"
        )
    lines.append("")
    lines.append(
        f"K20c capacity model: single-pass up to {oc.max_row_elements(8)} "
        "float64 elements (the paper's measured 29440)"
    )
    write_report(results_dir, "ablation_onchip", "\n".join(lines))

    for m, n, useful, d1, d2 in rows:
        # single pass: ~2 accesses/element (plus line-alignment padding on
        # rows whose pitch is not a multiple of the 128-byte line)
        assert d1 <= 1.5 * useful
        # two passes cost at least ~2x, more when the gather scatters
        assert d2 > 1.8 * d1
    # the scattered cases pay MORE than 2x (the gather term)
    scattered = [r for r in rows if (r[0], r[1]) != (8, 1024)]
    assert max(d2 / d1 for _, _, _, d1, d2 in scattered) > 2.2
