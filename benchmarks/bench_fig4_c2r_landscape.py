"""Figure 4 — C2R performance landscape on the (modeled) Tesla K20c.

Paper: 250000 row-major arrays, m, n in [1000, 25000], 64-bit elements,
colors 10-26 GB/s.  Structure to reproduce: a high-performing band at
*small n* (a row fits on chip / stays cache-resident during its shuffle),
gradually darker elsewhere, with extra structure along divisibility lines.

Here: the gpusim cost model over a coarse grid (each cell's pass
efficiencies are measured from that shape's real gather/alignment traces).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpusim.cost import c2r_cost

from conftest import ascii_heatmap, write_csv, write_report

GRID = [1000, 3000, 5000, 7000, 9000, 12000, 15000, 18000, 21000, 25000]


@pytest.mark.benchmark(group="fig4")
def test_c2r_model_single_cell(benchmark):
    benchmark.pedantic(lambda: c2r_cost(12000, 9000, 8), rounds=3, iterations=1)


def test_report_fig4(benchmark, results_dir):
    def build():
        grid = np.zeros((len(GRID), len(GRID)))
        for i, m in enumerate(GRID):
            for j, n in enumerate(GRID):
                # jitter dims so gcd structure varies like random sampling
                mm, nn = m + 1, n + (i % 3)
                grid[i, j] = c2r_cost(mm, nn, 8).throughput_gbps
        return grid

    grid = benchmark.pedantic(build, rounds=1, iterations=1)

    lines = [
        "Figure 4: modeled C2R throughput landscape (float64), Tesla K20c model",
        "rows = m, cols = n; paper colorbar: 10-26 GB/s",
        "",
        ascii_heatmap(grid, GRID, GRID),
        "",
        "rows (GB/s):",
    ]
    for m, row in zip(GRID, grid):
        lines.append(
            f"  m={m:>6}: " + " ".join(f"{v:5.1f}" for v in row)
        )
    band = float(np.median(grid[:, 0]))
    bulk = float(np.median(grid[:, 4:]))
    lines.append("")
    lines.append(f"small-n band median: {band:.1f} GB/s   bulk median: {bulk:.1f} GB/s")
    write_report(results_dir, "fig4_c2r_landscape", "\n".join(lines))
    write_csv(
        results_dir,
        "fig4_c2r_landscape",
        ["m\\n"] + GRID,
        [[m] + [f"{v:.2f}" for v in row] for m, row in zip(GRID, grid)],
    )

    # the fast band at small n must exist
    assert band > bulk
    # values live in the paper's 10-30 GB/s class
    assert 5 < bulk < 40
