"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings
from hypothesis import strategies as st

# One shared profile: generous deadlines (the strict kernels loop in Python
# by design) and a moderate example budget; override per-test where a case
# needs more.  HYPOTHESIS_PROFILE=soak quadruples the example budget for
# deeper shake-out runs (used by CI-style soak passes).
settings.register_profile("repro", deadline=None, max_examples=50)
settings.register_profile("soak", deadline=None, max_examples=200)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "repro"))

# Matrix dimensions used by property tests.  Small enough for exhaustive
# per-element checks, large enough to hit every gcd regime (coprime, square,
# one-divides-the-other, shared nontrivial factor).
dims = st.integers(min_value=1, max_value=48)

dim_pairs = st.tuples(dims, dims)

# Pairs guaranteed to have gcd > 1 (the pre-rotation path).
noncoprime_pairs = st.tuples(
    st.integers(2, 8), st.integers(1, 8), st.integers(1, 8)
).map(lambda t: (t[0] * t[1], t[0] * t[2]))

element_dtypes = st.sampled_from([np.float64, np.float32, np.int64, np.int32])


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic per-test RNG."""
    return np.random.default_rng(0xC2A)


def sequential_matrix(m: int, n: int, dtype=np.int64) -> np.ndarray:
    """The canonical test matrix: values 0..mn-1 in row-major order.

    Using distinct values makes any permutation error visible.
    """
    return np.arange(m * n, dtype=dtype).reshape(m, n)
