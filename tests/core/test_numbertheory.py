"""Tests for extended gcd and modular multiplicative inverses."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.numbertheory import are_coprime, extended_gcd, mmi

ints = st.integers(min_value=0, max_value=10**9)
positive = st.integers(min_value=1, max_value=10**9)


class TestExtendedGcd:
    @given(ints, ints)
    def test_bezout_identity(self, x, y):
        g, u, v = extended_gcd(x, y)
        assert g == math.gcd(x, y)
        assert u * x + v * y == g

    def test_zero_cases(self):
        assert extended_gcd(0, 0)[0] == 0
        assert extended_gcd(0, 7)[0] == 7
        assert extended_gcd(7, 0)[0] == 7

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            extended_gcd(-1, 2)


class TestMmi:
    @given(positive, positive)
    def test_inverse_property(self, x, y):
        """The paper's defining property: (x * mmi(x, y)) mod y == 1."""
        if math.gcd(x, y) != 1:
            with pytest.raises(ValueError):
                mmi(x, y)
        elif y == 1:
            assert mmi(x, y) == 0
        else:
            inv = mmi(x, y)
            assert 0 <= inv < y
            assert (x * inv) % y == 1

    def test_modulus_one_degenerate(self):
        # arises for matrices where n divides m (b == 1)
        assert mmi(5, 1) == 0
        assert mmi(0, 1) == 0

    def test_noncoprime_raises(self):
        with pytest.raises(ValueError):
            mmi(4, 6)

    def test_nonpositive_modulus_raises(self):
        with pytest.raises(ValueError):
            mmi(3, 0)

    @given(st.integers(-10**6, 10**6), st.integers(2, 10**6))
    def test_negative_x_normalized(self, x, y):
        if math.gcd(x % y, y) == 1:
            inv = mmi(x, y)
            assert (x * inv) % y == 1


class TestCoprime:
    @given(positive, positive)
    def test_matches_math_gcd(self, x, y):
        assert are_coprime(x, y) == (math.gcd(x, y) == 1)

    def test_decomposition_factors_always_coprime(self):
        """a = m/c and b = n/c are coprime by construction — the property
        Eq. 31/34 rely on to form the inverses."""
        for m in range(1, 40):
            for n in range(1, 40):
                c = math.gcd(m, n)
                assert are_coprime(m // c, n // c)
