"""Tests for the Section 2 linearization and index maps (Eq. 1-10)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import indexing as ix
from repro.core.indexing import Decomposition

from ..conftest import dim_pairs, dims


class TestDecomposition:
    @given(dim_pairs)
    def test_constants_satisfy_definitions(self, mn):
        m, n = mn
        dec = Decomposition.of(m, n)
        assert dec.c == math.gcd(m, n)
        assert dec.a * dec.c == m
        assert dec.b * dec.c == n
        assert math.gcd(dec.a, dec.b) == 1

    @given(dim_pairs)
    def test_size_and_coprime_flags(self, mn):
        m, n = mn
        dec = Decomposition.of(m, n)
        assert dec.size == m * n
        assert dec.coprime == (math.gcd(m, n) == 1)

    @pytest.mark.parametrize("m,n", [(0, 3), (3, 0), (-1, 4), (4, -2)])
    def test_rejects_nonpositive_dimensions(self, m, n):
        with pytest.raises(ValueError):
            Decomposition.of(m, n)

    def test_paper_figure1_shape(self):
        dec = Decomposition.of(3, 8)
        assert (dec.c, dec.a, dec.b) == (1, 3, 8)

    def test_paper_figure2_shape(self):
        dec = Decomposition.of(4, 8)
        assert (dec.c, dec.a, dec.b) == (4, 1, 2)


class TestLinearization:
    @given(dim_pairs)
    def test_rowmajor_roundtrip(self, mn):
        """The paper's observation: lrm(irm(l), jrm(l)) == l."""
        m, n = mn
        for l in range(m * n):
            assert ix.lrm(ix.irm(l, n), ix.jrm(l, n), n) == l

    @given(dim_pairs)
    def test_colmajor_roundtrip(self, mn):
        """The paper's observation: lcm(icm(l), jcm(l)) == l."""
        m, n = mn
        for l in range(m * n):
            assert ix.lcm(ix.icm(l, m), ix.jcm(l, m), m) == l

    @given(dim_pairs)
    def test_rowmajor_enumerates_all_cells(self, mn):
        m, n = mn
        seen = {ix.lrm(i, j, n) for i in range(m) for j in range(n)}
        assert seen == set(range(m * n))

    @given(dim_pairs)
    def test_colmajor_enumerates_all_cells(self, mn):
        m, n = mn
        seen = {ix.lcm(i, j, m) for i in range(m) for j in range(n)}
        assert seen == set(range(m * n))

    @given(dim_pairs)
    def test_linearizations_agree_with_numpy(self, mn):
        m, n = mn
        A = np.arange(m * n).reshape(m, n)
        for i in range(m):
            for j in range(n):
                assert A.ravel()[ix.lrm(i, j, n)] == A[i, j]
                assert A.ravel(order="F")[ix.lcm(i, j, m)] == A[i, j]


class TestGatherSources:
    """Eq. 7-10 define the C2R/R2C gathers; check them against the oracles."""

    @given(dim_pairs)
    def test_c2r_gather_is_transpose_rowmajor(self, mn):
        """Theorem 1 (element-wise): A_C2R row-major == A^T row-major."""
        m, n = mn
        A = np.arange(m * n).reshape(m, n)
        B = np.empty_like(A)
        for i in range(m):
            for j in range(n):
                B[i, j] = A[ix.s_index(i, j, m, n), ix.c_index(i, j, m, n)]
        assert np.array_equal(B.ravel(), A.T.ravel())

    @given(dim_pairs)
    def test_r2c_gather_is_transpose_colmajor(self, mn):
        """Theorem 1 (element-wise): A_R2C col-major == A^T col-major."""
        m, n = mn
        A = np.arange(m * n).reshape(m, n)
        B = np.empty_like(A)
        for i in range(m):
            for j in range(n):
                B[i, j] = A[ix.t_index(i, j, m, n), ix.d_index(i, j, m, n)]
        assert np.array_equal(B.ravel(order="F"), A.T.ravel(order="F"))

    @given(dim_pairs)
    def test_c2r_and_r2c_are_inverse_permutations(self, mn):
        m, n = mn
        A = np.arange(m * n).reshape(m, n)
        # C2R then R2C applied as plain 2-D gathers must restore A.
        B = np.empty_like(A)
        for i in range(m):
            for j in range(n):
                B[i, j] = A[ix.s_index(i, j, m, n), ix.c_index(i, j, m, n)]
        C = np.empty_like(A)
        for i in range(m):
            for j in range(n):
                C[i, j] = B[ix.t_index(i, j, m, n), ix.d_index(i, j, m, n)]
        assert np.array_equal(C, A)

    def test_paper_worked_example_element16(self):
        """Section 2's example: m=3, n=8, element at (2,0) lands at (1,5)."""
        m, n = 3, 8
        i, j = 2, 0
        i_dst = ix.s_index(i, j, m, n)
        j_dst = ix.c_index(i, j, m, n)
        assert (i_dst, j_dst) == (1, 5)


class TestVectorizedForms:
    @given(dim_pairs)
    def test_vectorized_matches_scalar(self, mn):
        m, n = mn
        i = np.repeat(np.arange(m), n)
        j = np.tile(np.arange(n), m)
        np.testing.assert_array_equal(
            ix.s_index_v(i, j, m, n),
            [ix.s_index(int(a), int(b), m, n) for a, b in zip(i, j)],
        )
        np.testing.assert_array_equal(
            ix.c_index_v(i, j, m, n),
            [ix.c_index(int(a), int(b), m, n) for a, b in zip(i, j)],
        )
        np.testing.assert_array_equal(
            ix.t_index_v(i, j, m, n),
            [ix.t_index(int(a), int(b), m, n) for a, b in zip(i, j)],
        )
        np.testing.assert_array_equal(
            ix.d_index_v(i, j, m, n),
            [ix.d_index(int(a), int(b), m, n) for a, b in zip(i, j)],
        )

    @given(dims, dims)
    def test_vectorized_linearization_roundtrip(self, m, n):
        l = np.arange(m * n, dtype=np.int64)
        np.testing.assert_array_equal(ix.lrm_v(ix.irm_v(l, n), ix.jrm_v(l, n), n), l)
        np.testing.assert_array_equal(ix.lcm_v(ix.icm_v(l, m), ix.jcm_v(l, m), m), l)

    @given(st.integers(1, 10**6), st.integers(1, 10**6))
    def test_vectorized_forms_use_int64(self, m, n):
        out = ix.s_index_v(np.arange(4), np.arange(4), m, n)
        assert out.dtype == np.int64
