"""Tests for the pass primitives: strict and blocked variants agree."""

from __future__ import annotations

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.core import steps
from repro.core.indexing import Decomposition
from repro.core.permutation import Permutation
from repro.core.steps import Scratch, WorkCounter

from ..conftest import dim_pairs


def _fresh(mn):
    m, n = mn
    dec = Decomposition.of(m, n)
    A = np.arange(m * n, dtype=np.int64).reshape(m, n)
    return dec, A


class TestColumnRotation:
    @given(dim_pairs, st.booleans())
    def test_strict_matches_blocked(self, mn, inverse):
        dec, A = _fresh(mn)
        s, b = A.copy(), A.copy()
        steps.rotate_columns_strict(s, dec, inverse=inverse)
        steps.rotate_columns_blocked(b, dec, inverse=inverse)
        np.testing.assert_array_equal(s, b)

    @given(dim_pairs)
    def test_rotation_semantics(self, mn):
        """Column j rotates upward by j // b (Eq. 23)."""
        dec, A = _fresh(mn)
        out = A.copy()
        steps.rotate_columns_strict(out, dec)
        for j in range(dec.n):
            k = j // dec.b
            for i in range(dec.m):
                assert out[i, j] == A[(i + k) % dec.m, j]

    @given(dim_pairs)
    def test_inverse_restores(self, mn):
        dec, A = _fresh(mn)
        out = A.copy()
        steps.rotate_columns_strict(out, dec)
        steps.rotate_columns_strict(out, dec, inverse=True)
        np.testing.assert_array_equal(out, A)

    @given(dim_pairs)
    def test_work_is_at_most_one_read_one_write(self, mn):
        dec, A = _fresh(mn)
        cnt = WorkCounter()
        steps.rotate_columns_strict(A, dec, counter=cnt)
        assert cnt.reads <= dec.size
        assert cnt.writes <= dec.size

    @given(dim_pairs, st.booleans())
    def test_rotate_p_variants_agree(self, mn, inverse):
        dec, A = _fresh(mn)
        s, b = A.copy(), A.copy()
        steps.rotate_p_strict(s, dec, inverse=inverse)
        steps.rotate_p_blocked(b, dec, inverse=inverse)
        np.testing.assert_array_equal(s, b)

    @given(dim_pairs)
    def test_rotate_p_inverse_restores(self, mn):
        dec, A = _fresh(mn)
        out = A.copy()
        steps.rotate_p_strict(out, dec)
        steps.rotate_p_strict(out, dec, inverse=True)
        np.testing.assert_array_equal(out, A)


class TestRowShuffle:
    @given(dim_pairs)
    def test_gather_and_scatter_forms_agree(self, mn):
        """Gathering with d'^{-1} == scattering with d' (C2R direction)."""
        dec, A = _fresh(mn)
        g, s = A.copy(), A.copy()
        steps.shuffle_rows_strict(g, dec, gather=True, use_dprime=False)
        steps.shuffle_rows_strict(s, dec, gather=False, use_dprime=True)
        np.testing.assert_array_equal(g, s)

    @given(dim_pairs)
    def test_r2c_direction_forms_agree(self, mn):
        """Gathering with d' == scattering with d'^{-1} (R2C direction)."""
        dec, A = _fresh(mn)
        g, s = A.copy(), A.copy()
        steps.shuffle_rows_strict(g, dec, gather=True, use_dprime=True)
        steps.shuffle_rows_strict(s, dec, gather=False, use_dprime=False)
        np.testing.assert_array_equal(g, s)

    @given(dim_pairs, st.booleans())
    def test_strict_matches_blocked(self, mn, use_dprime):
        dec, A = _fresh(mn)
        s, b = A.copy(), A.copy()
        steps.shuffle_rows_strict(s, dec, gather=True, use_dprime=use_dprime)
        steps.shuffle_rows_blocked(b, dec, use_dprime=use_dprime)
        np.testing.assert_array_equal(s, b)

    @given(dim_pairs)
    def test_directions_invert(self, mn):
        dec, A = _fresh(mn)
        out = A.copy()
        steps.shuffle_rows_strict(out, dec, gather=True, use_dprime=False)
        steps.shuffle_rows_strict(out, dec, gather=True, use_dprime=True)
        np.testing.assert_array_equal(out, A)

    @given(dim_pairs)
    def test_rows_keep_their_multiset(self, mn):
        """A row shuffle permutes within rows: row contents are preserved."""
        dec, A = _fresh(mn)
        out = A.copy()
        steps.shuffle_rows_strict(out, dec, gather=True, use_dprime=False)
        for i in range(dec.m):
            assert sorted(out[i]) == sorted(A[i])


class TestRowPermutation:
    @given(dim_pairs, st.integers(0, 2**32 - 1))
    def test_cycle_following_matches_fancy_indexing(self, mn, seed):
        m, n = mn
        A = np.arange(m * n, dtype=np.int64).reshape(m, n)
        g = Permutation.random(m, np.random.default_rng(seed)).gather
        s, b = A.copy(), A.copy()
        steps.permute_rows_strict(s, g)
        steps.permute_rows_blocked(b, g)
        np.testing.assert_array_equal(s, b)
        np.testing.assert_array_equal(s, A[g, :])

    @given(dim_pairs)
    def test_identity_moves_nothing(self, mn):
        m, n = mn
        A = np.arange(m * n, dtype=np.int64).reshape(m, n)
        out = A.copy()
        cnt = WorkCounter()
        steps.permute_rows_strict(out, np.arange(m), counter=cnt)
        np.testing.assert_array_equal(out, A)
        assert cnt.total == 0

    @given(dim_pairs, st.integers(0, 2**32 - 1))
    def test_work_bound_one_read_one_write_per_element(self, mn, seed):
        m, n = mn
        A = np.arange(m * n, dtype=np.int64).reshape(m, n)
        g = Permutation.random(m, np.random.default_rng(seed)).gather
        cnt = WorkCounter()
        steps.permute_rows_strict(A, g, counter=cnt)
        assert cnt.reads <= m * n
        assert cnt.writes <= m * n

    def test_shape_mismatch_raises(self):
        A = np.zeros((3, 4))
        import pytest

        with pytest.raises(ValueError):
            steps.permute_rows_strict(A, np.arange(4))

    @given(dim_pairs)
    def test_scratch_reuse(self, mn):
        """A caller-provided Scratch is reusable across passes."""
        dec, A = _fresh(mn)
        sc = Scratch.for_shape(dec.m, dec.n, A.dtype)
        out = A.copy()
        steps.rotate_columns_strict(out, dec, scratch=sc)
        steps.shuffle_rows_strict(out, dec, scratch=sc)
        steps.rotate_columns_strict(out, dec, scratch=sc, inverse=True)
        # no crash and scratch buffer has the right capacity
        assert sc.buf.shape[0] == max(dec.m, dec.n)
