"""Tests for the Section 3/4 index equations (Eq. 22-36).

These are the "proofs as tests": each lemma/theorem about the index functions
is checked exhaustively over hypothesis-generated shapes.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given

from repro.core import equations as eq
from repro.core.indexing import Decomposition

from ..conftest import dim_pairs, noncoprime_pairs


def _dec(mn) -> Decomposition:
    return Decomposition.of(*mn)


class TestDestinationColumn:
    @given(dim_pairs)
    def test_lemma1_periodicity(self, mn):
        """Lemma 1: d_i(j) is periodic in j with period b."""
        dec = _dec(mn)
        for i in range(dec.m):
            for j in range(dec.n):
                assert eq.d_dest(dec, i, j) == eq.d_dest(dec, i, j % dec.b)

    @given(noncoprime_pairs)
    def test_d_not_bijective_when_gcd_gt_1(self, mn):
        """When c > 1 the raw destination map collides (b < n)."""
        dec = _dec(mn)
        assert dec.c > 1
        if dec.n > dec.b:  # guaranteed by c > 1
            dests = {eq.d_dest(dec, 0, j) for j in range(dec.n)}
            assert len(dests) == dec.b < dec.n

    @given(dim_pairs)
    def test_d_bijective_iff_coprime(self, mn):
        dec = _dec(mn)
        dests = {eq.d_dest(dec, 0, j) for j in range(dec.n)}
        assert (len(dests) == dec.n) == dec.coprime

    @given(dim_pairs)
    def test_theorem3_dprime_bijective_every_row(self, mn):
        """Theorem 3: d'_i is a bijection on [0, n) for every fixed i."""
        dec = _dec(mn)
        for i in range(dec.m):
            dests = sorted(eq.dprime(dec, i, j) for j in range(dec.n))
            assert dests == list(range(dec.n))

    @given(dim_pairs)
    def test_coprime_case_dprime_equals_d(self, mn):
        """Section 3 note: c == 1 implies d'_i == d_i (rotation is trivial)."""
        dec = _dec(mn)
        if dec.coprime:
            for i in range(dec.m):
                for j in range(dec.n):
                    assert eq.dprime(dec, i, j) == eq.d_dest(dec, i, j)


class TestLemmas2And3:
    @given(dim_pairs)
    def test_lemma2_injectivity(self, mn):
        """h -> h*m mod n is injective on [0, b)."""
        dec = _dec(mn)
        vals = [(h * dec.m) % dec.n for h in range(dec.b)]
        assert len(set(vals)) == dec.b

    @given(dim_pairs)
    def test_lemma3_set_equality(self, mn):
        """{h*m mod n : h in [0,b)} == {h*c : h in [0,b)}."""
        dec = _dec(mn)
        S = {(h * dec.m) % dec.n for h in range(dec.b)}
        T = {h * dec.c for h in range(dec.b)}
        assert S == T


class TestInverses:
    @given(dim_pairs)
    def test_eq31_inverts_dprime(self, mn):
        """d'_i(d'^{-1}_i(j)) == j for all i, j."""
        dec = _dec(mn)
        for i in range(dec.m):
            for j in range(dec.n):
                assert eq.dprime(dec, i, eq.dprime_inverse(dec, i, j)) == j

    @given(dim_pairs)
    def test_eq31_left_inverse_too(self, mn):
        dec = _dec(mn)
        for i in range(dec.m):
            for j in range(dec.n):
                assert eq.dprime_inverse(dec, i, eq.dprime(dec, i, j)) == j

    @given(dim_pairs)
    def test_eq34_inverts_q(self, mn):
        """q(q^{-1}(i)) == i and q^{-1}(q(i)) == i."""
        dec = _dec(mn)
        for i in range(dec.m):
            assert eq.permute_q(dec, eq.permute_q_inverse(dec, i)) == i
            assert eq.permute_q_inverse(dec, eq.permute_q(dec, i)) == i

    @given(dim_pairs)
    def test_rotation_inverses(self, mn):
        """Eq. 35/36 invert Eq. 32/23 column-wise."""
        dec = _dec(mn)
        for j in range(dec.n):
            for i in range(dec.m):
                assert eq.rotate_p_inverse(dec, eq.rotate_p(dec, i, j), j) == i
                assert eq.rotate_r_inverse(dec, eq.rotate_r(dec, i, j), j) == i


class TestColumnShuffleDecomposition:
    @given(dim_pairs)
    def test_p_compose_q_equals_sprime(self, mn):
        """Section 4.2: (p_j . q)(i) == s'_j(i) under gather composition."""
        dec = _dec(mn)
        for j in range(dec.n):
            for i in range(dec.m):
                assert eq.rotate_p(dec, eq.permute_q(dec, i), j) == eq.sprime(
                    dec, i, j
                )

    @given(dim_pairs)
    def test_q_is_bijection(self, mn):
        dec = _dec(mn)
        vals = sorted(eq.permute_q(dec, i) for i in range(dec.m))
        assert vals == list(range(dec.m))

    @given(dim_pairs)
    def test_sprime_bijective_every_column(self, mn):
        dec = _dec(mn)
        for j in range(dec.n):
            vals = sorted(eq.sprime(dec, i, j) for i in range(dec.m))
            assert vals == list(range(dec.m))

    @given(dim_pairs)
    def test_theorem5_source_column_grouping(self, mn):
        """The proof of Theorem 5: c_j(i) lands in [kb, (k+1)b) for k = i//a.

        This is the one-to-one correspondence between rotated column groups
        and row groups that justifies the -floor(i/a) correction in s'.
        """
        dec = _dec(mn)
        for i in range(dec.m):
            k = i // dec.a
            for j in range(dec.n):
                cj = (j + i * dec.n) // dec.m
                assert k * dec.b <= cj < (k + 1) * dec.b


class TestVectorizedEquivalence:
    @given(dim_pairs)
    def test_all_vectorized_match_scalar(self, mn):
        dec = _dec(mn)
        i = np.repeat(np.arange(dec.m, dtype=np.int64), dec.n)
        j = np.tile(np.arange(dec.n, dtype=np.int64), dec.m)
        pairs = list(zip(i.tolist(), j.tolist()))
        np.testing.assert_array_equal(
            eq.rotate_r_v(dec, i, j), [eq.rotate_r(dec, a, b) for a, b in pairs]
        )
        np.testing.assert_array_equal(
            eq.rotate_r_inverse_v(dec, i, j),
            [eq.rotate_r_inverse(dec, a, b) for a, b in pairs],
        )
        np.testing.assert_array_equal(
            eq.dprime_v(dec, i, j), [eq.dprime(dec, a, b) for a, b in pairs]
        )
        np.testing.assert_array_equal(
            eq.dprime_inverse_v(dec, i, j),
            [eq.dprime_inverse(dec, a, b) for a, b in pairs],
        )
        np.testing.assert_array_equal(
            eq.sprime_v(dec, i, j), [eq.sprime(dec, a, b) for a, b in pairs]
        )
        np.testing.assert_array_equal(
            eq.rotate_p_v(dec, i, j), [eq.rotate_p(dec, a, b) for a, b in pairs]
        )
        np.testing.assert_array_equal(
            eq.rotate_p_inverse_v(dec, i, j),
            [eq.rotate_p_inverse(dec, a, b) for a, b in pairs],
        )
        rows = np.arange(dec.m, dtype=np.int64)
        np.testing.assert_array_equal(
            eq.permute_q_v(dec, rows), [eq.permute_q(dec, a) for a in range(dec.m)]
        )
        np.testing.assert_array_equal(
            eq.permute_q_inverse_v(dec, rows),
            [eq.permute_q_inverse(dec, a) for a in range(dec.m)],
        )

    @given(dim_pairs)
    def test_matrix_builders_match_vectorized(self, mn):
        dec = _dec(mn)
        i = np.arange(dec.m, dtype=np.int64)[:, None]
        j = np.arange(dec.n, dtype=np.int64)[None, :]
        np.testing.assert_array_equal(
            eq.rotate_r_matrix(dec), eq.rotate_r_v(dec, i, j)
        )
        np.testing.assert_array_equal(
            eq.dprime_matrix(dec), eq.dprime_v(dec, i, j)
        )
        np.testing.assert_array_equal(
            eq.dprime_inverse_matrix(dec), eq.dprime_inverse_v(dec, i, j)
        )
        np.testing.assert_array_equal(
            eq.sprime_matrix(dec), eq.sprime_v(dec, i, j)
        )


class TestSprimeInverse:
    @given(dim_pairs)
    def test_inverts_sprime_columnwise(self, mn):
        """s'_j(s'^{-1}_j(i)) == i: the fused inverse column shuffle."""
        dec = _dec(mn)
        for j in range(dec.n):
            for i in range(dec.m):
                assert eq.sprime(dec, eq.sprime_inverse(dec, i, j), j) == i
                assert eq.sprime_inverse(dec, eq.sprime(dec, i, j), j) == i

    @given(dim_pairs)
    def test_vectorized_and_matrix_forms(self, mn):
        dec = _dec(mn)
        i = np.arange(dec.m, dtype=np.int64)[:, None]
        j = np.arange(dec.n, dtype=np.int64)[None, :]
        pairs = [
            (int(a), int(b))
            for a in range(dec.m)
            for b in range(dec.n)
        ]
        np.testing.assert_array_equal(
            eq.sprime_inverse_v(dec, i, j).ravel(),
            [eq.sprime_inverse(dec, a, b) for a, b in pairs],
        )
        np.testing.assert_array_equal(
            eq.sprime_inverse_matrix(dec), eq.sprime_inverse_v(dec, i, j)
        )

    @given(dim_pairs)
    def test_inverse_matrix_builders(self, mn):
        """The inverse-rotation matrix builders really invert the forward
        ones, as whole-matrix gathers."""
        dec = _dec(mn)
        A = np.arange(dec.size, dtype=np.int64).reshape(dec.m, dec.n)
        fwd = np.take_along_axis(A, eq.rotate_r_matrix(dec), axis=0)
        back = np.take_along_axis(fwd, eq.rotate_r_inverse_matrix(dec), axis=0)
        np.testing.assert_array_equal(back, A)
        fwd = np.take_along_axis(A, eq.rotate_p_matrix(dec), axis=0)
        back = np.take_along_axis(fwd, eq.rotate_p_inverse_matrix(dec), axis=0)
        np.testing.assert_array_equal(back, A)
