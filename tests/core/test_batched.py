"""Tests for batched in-place transposition."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BatchedTransposePlan, batched_transpose_inplace
from repro.core.batched import validate_batch_member

from ..conftest import dim_pairs

batch_sizes = st.integers(1, 6)
orders = st.sampled_from(["C", "F"])
algorithms = st.sampled_from(["auto", "c2r", "r2c"])


class TestBatched:
    @given(dim_pairs, batch_sizes, orders, algorithms)
    @settings(max_examples=60, deadline=None)
    def test_every_matrix_transposed(self, mn, k, order, algorithm):
        m, n = mn
        rng = np.random.default_rng(k)
        mats = [rng.standard_normal((m, n)) for _ in range(k)]
        buf = np.concatenate([A.ravel(order=order) for A in mats])
        batched_transpose_inplace(buf, m, n, order, algorithm=algorithm)
        for b, A in enumerate(mats):
            got = buf[b * m * n : (b + 1) * m * n]
            np.testing.assert_array_equal(got, A.T.ravel(order=order))

    @given(dim_pairs, batch_sizes)
    @settings(max_examples=30, deadline=None)
    def test_matches_unbatched(self, mn, k):
        from repro.core import transpose_inplace

        m, n = mn
        base = np.arange(k * m * n, dtype=np.float64)
        batched = base.copy()
        batched_transpose_inplace(batched, m, n)
        loop = base.copy()
        for b in range(k):
            transpose_inplace(loop[b * m * n : (b + 1) * m * n], m, n)
        np.testing.assert_array_equal(batched, loop)

    def test_accepts_2d_and_3d_views(self):
        m, n, k = 6, 4, 3
        base = np.arange(k * m * n, dtype=np.int64)
        flat = base.copy()
        two = base.copy().reshape(k, m * n)
        three = base.copy().reshape(k, m, n)
        plan = BatchedTransposePlan(m, n)
        plan.execute(flat)
        plan.execute(two)
        plan.execute(three)
        np.testing.assert_array_equal(flat, two.ravel())
        np.testing.assert_array_equal(flat, three.ravel())

    def test_plan_reusable_across_batches(self):
        plan = BatchedTransposePlan(5, 7)
        for k in (1, 4):
            buf = np.arange(k * 35, dtype=np.int64)
            plan.execute(buf)
            for b in range(k):
                np.testing.assert_array_equal(
                    buf[b * 35 : (b + 1) * 35].reshape(7, 5),
                    (np.arange(b * 35, (b + 1) * 35).reshape(5, 7)).T,
                )

    def test_validates_inputs(self):
        plan = BatchedTransposePlan(3, 4)
        with pytest.raises(ValueError):
            plan.execute(np.zeros(13))  # not a multiple of 12
        with pytest.raises(ValueError):
            plan.execute(np.zeros((2, 11)))
        with pytest.raises(ValueError):
            plan.execute(np.zeros((2, 3, 5)))
        with pytest.raises(ValueError):
            BatchedTransposePlan(3, 4, order="Z")
        with pytest.raises(ValueError):
            BatchedTransposePlan(3, 4, algorithm="psychic")

    def test_repr(self):
        assert "BatchedTransposePlan" in repr(BatchedTransposePlan(3, 4))

    def test_rejects_read_only_buffer(self):
        buf = np.arange(12, dtype=np.float64)
        buf.flags.writeable = False
        with pytest.raises(ValueError, match="writeable"):
            BatchedTransposePlan(3, 4).execute(buf)


class TestValidateBatchMember:
    """The admission checks the serving batcher runs per coalesced member."""

    def test_accepts_flat_2d_and_stacked_layouts(self):
        validate_batch_member(np.zeros(12), 3, 4)
        validate_batch_member(np.zeros((3, 4)), 3, 4)
        validate_batch_member(np.zeros(24), 3, 4, count=2)
        validate_batch_member(np.zeros((2, 12)), 3, 4, count=2)

    def test_rejects_bad_count(self):
        with pytest.raises(ValueError, match="count"):
            validate_batch_member(np.zeros(12), 3, 4, count=0)

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValueError, match="3-D"):
            validate_batch_member(np.zeros((1, 3, 4)), 3, 4)

    def test_rejects_wrong_size(self):
        with pytest.raises(ValueError, match="elements"):
            validate_batch_member(np.zeros(11), 3, 4)
        with pytest.raises(ValueError, match="elements"):
            validate_batch_member(np.zeros(12), 3, 4, count=2)

    def test_rejects_mismatched_2d_shape(self):
        # Right element count, wrong axes split.
        with pytest.raises(ValueError, match="shape"):
            validate_batch_member(np.zeros((4, 3)), 3, 4)

    def test_rejects_strided_view(self):
        base = np.zeros(24)
        with pytest.raises(ValueError, match="contiguous"):
            validate_batch_member(base[::2], 3, 4)

    def test_rejects_read_only_unless_waived(self):
        buf = np.zeros(12)
        buf.flags.writeable = False
        with pytest.raises(ValueError, match="read-only"):
            validate_batch_member(buf, 3, 4)
        # The serving path stages a copy, so it waives writeability.
        validate_batch_member(buf, 3, 4, require_writeable=False)

    def test_rejects_foreign_dtype(self):
        with pytest.raises(ValueError, match="dtype"):
            validate_batch_member(
                np.zeros(12, dtype=np.float32), 3, 4, np.float64
            )
        validate_batch_member(np.zeros(12, dtype=np.float32), 3, 4, np.float32)
