"""Whole-algorithm theorem tests (Theorems 1, 2, 4, 6, 7).

Per-equation lemmas live in test_equations.py; these tests exercise the
theorems that talk about the *complete* transposition.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given

from repro.core import c2r_transpose, r2c_transpose
from repro.core import equations as eq
from repro.core import steps
from repro.core.indexing import Decomposition
from repro.core.permutation import Permutation
from repro.core.reference import c2r_oracle, r2c_oracle

from ..conftest import dim_pairs


class TestTheorem1:
    @given(dim_pairs)
    def test_c2r_rowmajor_linearization(self, mn):
        """A_C2R row-major == A^T row-major."""
        m, n = mn
        A = np.arange(m * n).reshape(m, n)
        np.testing.assert_array_equal(c2r_oracle(A).ravel(), A.T.ravel())

    @given(dim_pairs)
    def test_r2c_colmajor_linearization(self, mn):
        """A_R2C col-major == A^T col-major."""
        m, n = mn
        A = np.arange(m * n).reshape(m, n)
        np.testing.assert_array_equal(
            r2c_oracle(A).ravel(order="F"), A.T.ravel(order="F")
        )

    @given(dim_pairs)
    def test_kernel_matches_oracle(self, mn):
        """The in-place kernel computes exactly the A_C2R permutation."""
        m, n = mn
        A = np.arange(m * n).reshape(m, n)
        buf = A.ravel().copy()
        c2r_transpose(buf, m, n)
        np.testing.assert_array_equal(buf.reshape(m, n), c2r_oracle(A))

    @given(dim_pairs)
    def test_r2c_kernel_matches_oracle(self, mn):
        m, n = mn
        A = np.arange(m * n).reshape(m, n)
        buf = A.ravel().copy()
        r2c_transpose(buf, m, n)
        np.testing.assert_array_equal(buf.reshape(m, n), r2c_oracle(A))


class TestTheorem2:
    @given(dim_pairs)
    def test_swapped_r2c_equals_c2r_on_buffer(self, mn):
        """Swapping dims turns R2C into a row-major transposer: the buffer
        permutation induced by R2C(n, m) equals the one induced by C2R(m, n).
        """
        m, n = mn
        base = np.arange(m * n, dtype=np.int64)
        via_c2r = base.copy()
        c2r_transpose(via_c2r, m, n)
        via_r2c = base.copy()
        r2c_transpose(via_r2c, n, m)
        np.testing.assert_array_equal(via_c2r, via_r2c)


class TestTheorem4:
    """Decomposability: each pass is a well-formed row/column permutation."""

    @given(dim_pairs)
    def test_row_pass_is_row_local(self, mn):
        m, n = mn
        dec = Decomposition.of(m, n)
        A = np.arange(m * n, dtype=np.int64).reshape(m, n)
        out = A.copy()
        steps.shuffle_rows_strict(out, dec, gather=True, use_dprime=False)
        for i in range(m):
            assert set(out[i]) == set(A[i])

    @given(dim_pairs)
    def test_column_passes_are_column_local(self, mn):
        m, n = mn
        dec = Decomposition.of(m, n)
        A = np.arange(m * n, dtype=np.int64).reshape(m, n)
        rot = A.copy()
        steps.rotate_columns_strict(rot, dec)
        for j in range(n):
            assert set(rot[:, j]) == set(A[:, j])

    @given(dim_pairs)
    def test_after_row_shuffle_each_element_in_final_column(self, mn):
        """After pre-rotation + row shuffle, every element already sits in
        the column it occupies in the final transposed buffer."""
        m, n = mn
        dec = Decomposition.of(m, n)
        A = np.arange(m * n, dtype=np.int64).reshape(m, n)
        mid = A.copy()
        if dec.c > 1:
            steps.rotate_columns_strict(mid, dec)
        steps.shuffle_rows_strict(mid, dec, gather=True, use_dprime=False)
        final = A.ravel().copy()
        c2r_transpose(final, m, n)
        final = final.reshape(m, n)
        for j in range(n):
            assert set(mid[:, j]) == set(final[:, j])


class TestTheorem7:
    @given(dim_pairs)
    def test_linearization_freedom(self, mn):
        """Performing the C2R passes with column-major indexing on the same
        buffer induces the identical final permutation (Eq. 28-30)."""
        m, n = mn
        base = np.arange(m * n, dtype=np.int64)

        # Row-major-indexed execution (the production kernel).
        rm = base.copy()
        c2r_transpose(rm, m, n)

        # Column-major-indexed execution: apply the same logical row/column
        # operations to the column-major view of the buffer.
        cm = base.copy()
        V = cm.reshape(m, n, order="F")  # view with col-major linearization
        dec = Decomposition.of(m, n)
        if dec.c > 1:
            V[:] = np.take_along_axis(V, eq.rotate_r_matrix(dec), axis=0)
        V[:] = np.take_along_axis(V, eq.dprime_inverse_matrix(dec), axis=1)
        V[:] = np.take_along_axis(V, eq.sprime_matrix(dec), axis=0)

        np.testing.assert_array_equal(rm, cm)


class TestInducedPermutation:
    @given(dim_pairs)
    def test_c2r_buffer_permutation_structure(self, mn):
        """The C2R kernel induces a fixed permutation of buffer slots; check
        it is a true permutation and its inverse is the R2C permutation."""
        m, n = mn
        base = np.arange(m * n, dtype=np.int64)
        fwd = base.copy()
        c2r_transpose(fwd, m, n)
        p = Permutation(fwd)  # validates bijectivity
        inv = base.copy()
        r2c_transpose(inv, m, n)
        assert Permutation(inv) == p.inverse()


class TestBufferOracles:
    @given(dim_pairs)
    def test_rowmajor_oracle(self, mn):
        from repro.core import transpose_rowmajor_oracle

        m, n = mn
        A = np.arange(m * n, dtype=np.int64)
        out = transpose_rowmajor_oracle(A, m, n)
        np.testing.assert_array_equal(out, A.reshape(m, n).T.ravel())
        np.testing.assert_array_equal(A, np.arange(m * n))  # input untouched

    @given(dim_pairs)
    def test_colmajor_oracle(self, mn):
        from repro.core import transpose_colmajor_oracle

        m, n = mn
        A = np.arange(m * n, dtype=np.int64).reshape(m, n)
        out = transpose_colmajor_oracle(A.ravel(order="F").copy(), m, n)
        np.testing.assert_array_equal(out, A.T.ravel(order="F"))

    def test_oracles_validate_length(self):
        import pytest

        from repro.core import transpose_colmajor_oracle, transpose_rowmajor_oracle

        with pytest.raises(ValueError):
            transpose_rowmajor_oracle(np.zeros(5), 2, 3)
        with pytest.raises(ValueError):
            transpose_colmajor_oracle(np.zeros(5), 2, 3)
