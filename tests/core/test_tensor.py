"""Tests for in-place 3-D axis permutations."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tensor import swap_first_axes_inplace, swap_last_axes_inplace

dims3 = st.tuples(st.integers(1, 12), st.integers(1, 12), st.integers(1, 12))


class TestSwapLastAxes:
    @given(dims3)
    @settings(max_examples=60)
    def test_matches_numpy_transpose(self, kmn):
        k, m, n = kmn
        t = np.arange(k * m * n, dtype=np.float64).reshape(k, m, n)
        expected = t.transpose(0, 2, 1).copy()
        out = swap_last_axes_inplace(t)
        np.testing.assert_array_equal(out, expected)
        assert np.shares_memory(out, t)

    @given(dims3)
    @settings(max_examples=30)
    def test_involution(self, kmn):
        k, m, n = kmn
        t = np.arange(k * m * n, dtype=np.int32).reshape(k, m, n)
        orig = t.copy()
        out = swap_last_axes_inplace(t)
        back = swap_last_axes_inplace(out)
        np.testing.assert_array_equal(back, orig)

    def test_validates(self):
        with pytest.raises(ValueError):
            swap_last_axes_inplace(np.zeros((2, 3)))
        with pytest.raises(ValueError):
            swap_last_axes_inplace(np.zeros((4, 4, 4)).transpose(2, 1, 0))


class TestSwapFirstAxes:
    @given(dims3)
    @settings(max_examples=60)
    def test_matches_numpy_transpose(self, mnk):
        m, n, k = mnk
        t = np.arange(m * n * k, dtype=np.float64).reshape(m, n, k)
        expected = t.transpose(1, 0, 2).copy()
        out = swap_first_axes_inplace(t)
        np.testing.assert_array_equal(out, expected)
        assert np.shares_memory(out, t)

    @given(dims3)
    @settings(max_examples=30)
    def test_involution(self, mnk):
        m, n, k = mnk
        t = np.arange(m * n * k, dtype=np.float32).reshape(m, n, k)
        orig = t.copy()
        back = swap_first_axes_inplace(swap_first_axes_inplace(t))
        np.testing.assert_array_equal(back, orig)

    @given(dims3)
    @settings(max_examples=20)
    def test_composition_reaches_any_leading_cycle(self, mnk):
        """(m,n,k)->(n,k,m) via two swaps: axis algebra composes."""
        m, n, k = mnk
        t = np.arange(m * n * k, dtype=np.int64).reshape(m, n, k)
        expected = t.transpose(1, 2, 0).copy()
        # (m,n,k) -(swap first)-> (n,m,k) -(swap last)-> (n,k,m)
        step1 = swap_first_axes_inplace(t)
        out = swap_last_axes_inplace(step1)
        np.testing.assert_array_equal(out, expected)

    def test_multibyte_super_elements(self):
        t = np.arange(5 * 7 * 3, dtype=np.complex128).reshape(5, 7, 3)
        expected = t.transpose(1, 0, 2).copy()
        out = swap_first_axes_inplace(t)
        np.testing.assert_array_equal(out, expected)

    def test_validates(self):
        with pytest.raises(ValueError):
            swap_first_axes_inplace(np.zeros(6))
