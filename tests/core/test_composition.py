"""Composition tests: the passes, as permutation objects, compose to the
transposition permutation.

These tests rebuild each pass of Algorithm 1 as an explicit
:class:`~repro.core.permutation.Permutation` of buffer slots and verify
algebraically that their composition equals the row-major transposition
permutation — the whole paper in one identity.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings

from repro.core import equations as eq
from repro.core.indexing import Decomposition
from repro.core.permutation import Permutation

from ..conftest import dim_pairs


def _buffer_perm_from_pass(m: int, n: int, apply_pass) -> Permutation:
    """The buffer-slot gather map induced by an in-place pass."""
    probe = np.arange(m * n, dtype=np.int64).reshape(m, n)
    out = probe.copy()
    apply_pass(out)
    return Permutation(out.ravel())


def _transposition_perm(m: int, n: int) -> Permutation:
    return Permutation(np.arange(m * n).reshape(m, n).T.ravel())


def _pass_rotate(dec: Decomposition):
    def apply(V):
        V[:] = np.take_along_axis(V, eq.rotate_r_matrix(dec), axis=0)

    return apply


def _pass_row_shuffle(dec: Decomposition):
    def apply(V):
        V[:] = np.take_along_axis(V, eq.dprime_inverse_matrix(dec), axis=1)

    return apply


def _pass_col_shuffle(dec: Decomposition):
    def apply(V):
        V[:] = np.take_along_axis(V, eq.sprime_matrix(dec), axis=0)

    return apply


def _pass_rotate_p(dec: Decomposition):
    def apply(V):
        V[:] = np.take_along_axis(V, eq.rotate_p_matrix(dec), axis=0)

    return apply


def _pass_permute_q(dec: Decomposition):
    def apply(V):
        V[:] = V[eq.permute_q_v(dec, np.arange(dec.m, dtype=np.int64)), :]

    return apply


class TestPassComposition:
    @given(dim_pairs)
    @settings(max_examples=50)
    def test_three_passes_compose_to_transposition(self, mn):
        """rotate . row-shuffle . col-shuffle == the transposition, as
        permutations of buffer slots."""
        m, n = mn
        dec = Decomposition.of(m, n)
        passes = []
        if dec.c > 1:
            passes.append(_buffer_perm_from_pass(m, n, _pass_rotate(dec)))
        passes.append(_buffer_perm_from_pass(m, n, _pass_row_shuffle(dec)))
        passes.append(_buffer_perm_from_pass(m, n, _pass_col_shuffle(dec)))
        total = passes[0]
        for p in passes[1:]:
            total = total @ p
        assert total == _transposition_perm(m, n)

    @given(dim_pairs)
    @settings(max_examples=50)
    def test_restricted_form_composes_identically(self, mn):
        """The 4-pass restricted form induces the same total permutation."""
        m, n = mn
        dec = Decomposition.of(m, n)
        passes = []
        if dec.c > 1:
            passes.append(_buffer_perm_from_pass(m, n, _pass_rotate(dec)))
        passes.append(_buffer_perm_from_pass(m, n, _pass_row_shuffle(dec)))
        passes.append(_buffer_perm_from_pass(m, n, _pass_rotate_p(dec)))
        passes.append(_buffer_perm_from_pass(m, n, _pass_permute_q(dec)))
        total = passes[0]
        for p in passes[1:]:
            total = total @ p
        assert total == _transposition_perm(m, n)

    @given(dim_pairs)
    @settings(max_examples=40)
    def test_each_pass_is_a_valid_permutation(self, mn):
        """Every pass individually permutes the buffer (Permutation's
        constructor validates bijectivity)."""
        m, n = mn
        dec = Decomposition.of(m, n)
        for builder in (
            _pass_rotate,
            _pass_row_shuffle,
            _pass_col_shuffle,
            _pass_rotate_p,
            _pass_permute_q,
        ):
            _buffer_perm_from_pass(m, n, builder(dec))  # raises if not

    @given(dim_pairs)
    @settings(max_examples=40)
    def test_pass_orders_of_the_transposition_permutation(self, mn):
        """Sanity: applying C2R twice is generally NOT the identity (the
        transposition of the buffer slots, unlike the matrix transpose, is
        not an involution for m != n)."""
        m, n = mn
        t = _transposition_perm(m, n)
        if m == n:
            assert (t @ t).is_identity()
        elif m > 1 and n > 1:
            # order divides lcm of cycle lengths; rarely 2 for m != n
            assert (t @ t).is_identity() == (t.order() <= 2)
