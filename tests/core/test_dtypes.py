"""Element-type coverage: the kernels are dtype-agnostic data movers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TransposePlan, c2r_transpose, r2c_transpose, transpose_inplace

DTYPES = [
    np.float16,
    np.float32,
    np.float64,
    np.int8,
    np.uint16,
    np.int32,
    np.int64,
    np.complex64,
    np.complex128,
    np.bool_,
]


def _matrix(m, n, dtype):
    if np.dtype(dtype) == np.bool_:
        return (np.arange(m * n).reshape(m, n) % 3 == 0)
    if np.issubdtype(np.dtype(dtype), np.complexfloating):
        base = np.arange(m * n, dtype=np.float64).reshape(m, n)
        return (base + 1j * base[::-1, ::-1]).astype(dtype)
    return np.arange(m * n).astype(dtype).reshape(m, n)


class TestDtypes:
    @pytest.mark.parametrize("dtype", DTYPES)
    @pytest.mark.parametrize("m,n", [(6, 10), (9, 7), (12, 12)])
    def test_c2r_all_dtypes(self, dtype, m, n):
        A = _matrix(m, n, dtype)
        buf = A.ravel().copy()
        c2r_transpose(buf, m, n)
        np.testing.assert_array_equal(buf.reshape(n, m), A.T)

    @pytest.mark.parametrize("dtype", DTYPES)
    def test_strict_mode_all_dtypes(self, dtype):
        m, n = 8, 14
        A = _matrix(m, n, dtype)
        buf = A.ravel().copy()
        c2r_transpose(buf, m, n, aux="strict")
        np.testing.assert_array_equal(buf.reshape(n, m), A.T)

    @pytest.mark.parametrize("dtype", DTYPES)
    def test_r2c_all_dtypes(self, dtype):
        m, n = 10, 6
        A = _matrix(m, n, dtype)
        buf = A.ravel().copy()
        r2c_transpose(buf, n, m)  # Theorem 2 direction
        np.testing.assert_array_equal(buf.reshape(n, m), A.T)

    def test_datetime_dtype(self):
        m, n = 4, 6
        A = (np.arange(m * n).reshape(m, n) * np.timedelta64(1, "D")
             + np.datetime64("2014-02-15"))
        buf = A.ravel().copy()
        transpose_inplace(buf, m, n)
        np.testing.assert_array_equal(buf.reshape(n, m), A.T)

    def test_fixed_width_strings(self):
        m, n = 5, 7
        A = np.array(
            [[f"r{i}c{j}" for j in range(n)] for i in range(m)], dtype="U6"
        )
        buf = A.ravel().copy()
        transpose_inplace(buf, m, n)
        np.testing.assert_array_equal(buf.reshape(n, m), A.T)

    def test_void_records_via_view(self):
        """Structured records transpose through a bytes view."""
        m, n = 6, 4
        dt = np.dtype([("a", "i4"), ("b", "f4")])
        A = np.zeros((m, n), dtype=dt)
        A["a"] = np.arange(m * n).reshape(m, n)
        A["b"] = np.arange(m * n).reshape(m, n) * 0.5
        buf = A.ravel().copy()
        transpose_inplace(buf, m, n)
        np.testing.assert_array_equal(buf.reshape(n, m), A.T)

    @pytest.mark.parametrize("dtype", [np.float32, np.complex128])
    def test_plan_preserves_values_exactly(self, dtype):
        rng = np.random.default_rng(3)
        m, n = 17, 23
        A = rng.standard_normal((m, n)).astype(dtype)
        if np.issubdtype(np.dtype(dtype), np.complexfloating):
            A = A + 1j * rng.standard_normal((m, n)).astype(np.float64)
        buf = A.ravel().copy()
        TransposePlan(m, n).execute(buf)
        # bitwise equality: pure data movement, no arithmetic on elements
        np.testing.assert_array_equal(buf.reshape(n, m), A.T)

    def test_nan_and_inf_preserved(self):
        A = np.array([[np.nan, np.inf], [-np.inf, 0.0], [1.0, -0.0]])
        buf = A.ravel().copy()
        transpose_inplace(buf, 3, 2)
        got = buf.reshape(2, 3)
        assert np.isnan(got[0, 0])
        assert got[1, 0] == np.inf
        assert got[0, 1] == -np.inf
        # -0.0 keeps its sign bit
        assert np.signbit(got[1, 2])
