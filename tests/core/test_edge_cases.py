"""Edge cases across the public surface: degenerate shapes, zero batches,
aliasing, and argument abuse that must fail loudly."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    BatchedTransposePlan,
    Decomposition,
    TransposePlan,
    c2r_transpose,
    r2c_transpose,
    transpose,
    transpose_inplace,
)
from repro.core.permutation import Permutation


class TestDegenerateShapes:
    @pytest.mark.parametrize("m,n", [(1, 1), (1, 17), (17, 1)])
    def test_vector_shapes_are_buffer_identities(self, m, n):
        buf = np.arange(m * n, dtype=np.float64)
        orig = buf.copy()
        c2r_transpose(buf, m, n)
        np.testing.assert_array_equal(buf, orig)
        r2c_transpose(buf, m, n)
        np.testing.assert_array_equal(buf, orig)

    def test_single_element(self):
        buf = np.array([42.0])
        transpose_inplace(buf, 1, 1)
        assert buf[0] == 42.0

    def test_two_by_two(self):
        buf = np.array([1.0, 2.0, 3.0, 4.0])
        transpose_inplace(buf, 2, 2)
        np.testing.assert_array_equal(buf, [1.0, 3.0, 2.0, 4.0])

    def test_prime_times_prime(self):
        m, n = 101, 103
        buf = np.arange(m * n)
        transpose_inplace(buf, m, n)
        assert buf.reshape(n, m)[5, 7] == 7 * n + 5

    def test_power_of_two_extremes(self):
        m, n = 1024, 2
        A = np.arange(m * n)
        buf = A.copy()
        transpose_inplace(buf, m, n)
        np.testing.assert_array_equal(buf.reshape(n, m), A.reshape(m, n).T)


class TestAliasingAndViews:
    def test_transpose_of_view_of_larger_buffer(self):
        backing = np.arange(100.0)
        window = backing[10:22]  # contiguous view
        expected = window.reshape(3, 4).T.copy()
        transpose_inplace(window, 3, 4)
        np.testing.assert_array_equal(window.reshape(4, 3), expected)
        # surrounding data untouched
        np.testing.assert_array_equal(backing[:10], np.arange(10.0))
        np.testing.assert_array_equal(backing[22:], np.arange(22.0, 100.0))

    def test_transpose_returns_same_object_for_2d(self):
        A = np.arange(12.0).reshape(3, 4)
        B = transpose(A)
        assert B.base is not None
        assert np.shares_memory(A, B)

    def test_noncontiguous_flat_buffer_rejected_loudly(self):
        """A silently-copied non-contiguous view would make the in-place
        call a no-op on the caller's data — the kernels refuse instead."""
        strided = np.arange(24.0)[::2]
        with pytest.raises(ValueError, match="contiguous"):
            c2r_transpose(strided, 3, 4)
        with pytest.raises(ValueError, match="contiguous"):
            r2c_transpose(strided, 3, 4)


class TestZeroAndAbuse:
    def test_zero_dimension_rejected(self):
        for m, n in [(0, 4), (4, 0), (0, 0), (-1, 4)]:
            with pytest.raises(ValueError):
                Decomposition.of(m, n)
            with pytest.raises(ValueError):
                transpose_inplace(np.zeros(max(m, 0) * max(n, 0)), m, n)

    def test_empty_batch(self):
        plan = BatchedTransposePlan(3, 4)
        out = plan.execute(np.zeros(0))
        assert out.size == 0

    def test_2d_buffer_to_flat_api_rejected(self):
        with pytest.raises(ValueError):
            c2r_transpose(np.zeros((3, 4)), 3, 4)

    def test_plan_wrong_dtype_is_fine(self):
        """Plans are dtype-agnostic: one plan serves any element type."""
        plan = TransposePlan(4, 6)
        for dtype in (np.int16, np.float64, np.complex64):
            A = np.arange(24).astype(dtype)
            plan.execute(A)
            assert A.reshape(6, 4)[1, 2] == np.asarray(2 * 6 + 1, dtype=dtype)

    def test_permutation_empty(self):
        p = Permutation(np.array([], dtype=np.int64))
        assert len(p) == 0
        assert p.is_identity()
        assert (p @ p).is_identity()
