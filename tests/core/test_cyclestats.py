"""Tests for the cycle-statistics / parallelization-argument module."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import decomposition_task_profile, transposition_cycle_profile
from repro.core.permutation import Permutation
from repro.baselines.cycle_following import successor

small_dims = st.tuples(st.integers(2, 24), st.integers(2, 24))


class TestTranspositionCycles:
    @given(small_dims)
    @settings(max_examples=60)
    def test_lengths_cover_all_moved_elements(self, mn):
        m, n = mn
        prof = transposition_cycle_profile(m, n)
        moved = sum(
            1
            for l in range(m * n)
            if successor(l, m, n) != l
        )
        assert prof.total == moved

    @given(small_dims)
    @settings(max_examples=40)
    def test_matches_permutation_algebra(self, mn):
        m, n = mn
        gather = np.empty(m * n, dtype=np.int64)
        # gather map of the transposition: new[P(l)] = old[l] -> gather is
        # the inverse successor map
        for l in range(m * n):
            gather[successor(l, m, n)] = l
        perm = Permutation(gather)
        expected = sorted(c for c in perm.cycle_lengths() if c > 1)
        got = sorted(transposition_cycle_profile(m, n).lengths.tolist())
        assert got == expected

    def test_vectors_have_no_cycles(self):
        assert transposition_cycle_profile(1, 9).n_units == 0
        assert transposition_cycle_profile(9, 1).n_units == 0

    def test_known_bad_balance_cases(self):
        """Transposition permutations concentrate work unpredictably: some
        shapes yield a couple of giant cycles, capping parallel speedup no
        matter how many processors exist (the paper's 'poorly distributed
        cycle lengths ... difficult to parallelize')."""
        prof = transposition_cycle_profile(60, 94)  # 2 cycles of ~half each
        assert prof.largest_fraction >= 0.5
        assert prof.speedup_bound(8) <= 2.0
        prof = transposition_cycle_profile(89, 55)
        assert prof.speedup_bound(8) <= 4.0

    def test_balance_is_shape_erratic(self):
        """Neighbouring shapes can differ wildly in cycle balance — the
        unpredictability that makes static scheduling impossible."""
        bounds = [
            transposition_cycle_profile(m, n).speedup_bound(8)
            for m, n in [(60, 94), (61, 94), (62, 94), (63, 94)]
        ]
        assert max(bounds) > 2 * min(bounds)


class TestDecompositionTasks:
    @given(small_dims)
    @settings(max_examples=60)
    def test_unit_counts(self, mn):
        m, n = mn
        task = decomposition_task_profile(m, n)
        coprime = np.gcd(m, n) == 1
        expected_units = m + n if coprime else m + 2 * n
        assert task.n_units == expected_units
        # total work = mn per pass
        passes = 2 if coprime else 3
        assert task.total == passes * m * n

    @given(small_dims)
    @settings(max_examples=60)
    def test_perfect_balance(self, mn):
        """Every pass's units are equal-sized: imbalance stays near 1 for
        any processor count that divides the unit counts reasonably."""
        m, n = mn
        task = decomposition_task_profile(m, n)
        assert task.imbalance(2) < 1.6
        assert task.speedup_bound(4) > 2.0

    @given(small_dims)
    @settings(max_examples=40)
    def test_decomposition_beats_cycles_on_balance(self, mn):
        m, n = mn
        cyc = transposition_cycle_profile(m, n)
        task = decomposition_task_profile(m, n)
        if cyc.n_units == 0:
            return
        if task.lengths.max() * 8 > task.total:
            # The balance claim is within-pass uniformity: it yields a better
            # p-way bound only once each pass holds >= p units of work.  On
            # very skinny shapes a single row/column unit exceeds the ideal
            # per-processor share and caps the decomposition's makespan,
            # while the cycle structure can coincidentally be near-uniform
            # (3x19: every cycle has length 6 or 2, so cycles reach the full
            # 8x while the decomposition caps at total/max = 6x).
            return
        assert task.speedup_bound(8) >= cyc.speedup_bound(8) - 1e-9

    def test_empty_profile_edge_cases(self):
        prof = transposition_cycle_profile(1, 1)
        assert prof.largest_fraction == 0.0
        assert prof.speedup_bound(4) == 1.0
        assert prof.imbalance(4) == 1.0
