"""Tests for out-of-core (file-backed) transposition."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import transpose_file_inplace


def _write(tmp_path, A: np.ndarray, order: str = "C"):
    path = tmp_path / "matrix.bin"
    A.ravel(order=order).tofile(path)
    return path


class TestTransposeFile:
    @pytest.mark.parametrize("m,n", [(7, 13), (16, 24), (1, 9), (40, 25)])
    @pytest.mark.parametrize("order", ["C", "F"])
    def test_transposes_file(self, tmp_path, m, n, order):
        A = np.arange(m * n, dtype=np.float64).reshape(m, n)
        path = _write(tmp_path, A, order)
        transpose_file_inplace(path, m, n, np.float64, order)
        got = np.fromfile(path, dtype=np.float64)
        np.testing.assert_array_equal(got, A.T.ravel(order=order))

    @pytest.mark.parametrize("algorithm", ["auto", "c2r", "r2c"])
    def test_algorithms(self, tmp_path, algorithm):
        A = np.arange(12 * 18, dtype=np.int32).reshape(12, 18)
        path = _write(tmp_path, A)
        transpose_file_inplace(path, 12, 18, np.int32, algorithm=algorithm)
        got = np.fromfile(path, dtype=np.int32)
        np.testing.assert_array_equal(got, A.T.ravel())

    def test_roundtrip(self, tmp_path):
        A = np.random.default_rng(0).standard_normal((31, 17))
        path = _write(tmp_path, A)
        transpose_file_inplace(path, 31, 17, np.float64)
        transpose_file_inplace(path, 17, 31, np.float64)
        np.testing.assert_array_equal(
            np.fromfile(path, dtype=np.float64), A.ravel()
        )

    def test_size_mismatch_rejected(self, tmp_path):
        path = tmp_path / "bad.bin"
        np.zeros(10).tofile(path)
        with pytest.raises(ValueError, match="bytes"):
            transpose_file_inplace(path, 3, 4, np.float64)

    def test_bad_order_rejected(self, tmp_path):
        A = np.zeros((2, 3))
        path = _write(tmp_path, A)
        with pytest.raises(ValueError):
            transpose_file_inplace(path, 2, 3, np.float64, "Z")

    def test_observability_parity_with_in_ram_path(self, tmp_path):
        """The file path emits the same op/pass span structure and
        bytes-moved metrics as the in-RAM transpose (satellite: the old
        memmap walk was invisible to tracing)."""
        from repro.runtime import metrics
        from repro.trace import spans

        A = np.arange(24 * 36, dtype=np.float64).reshape(24, 36)
        path = _write(tmp_path, A)
        was_enabled = spans.tracer.enabled
        spans.tracer.reset()
        spans.enable()
        try:
            transpose_file_inplace(path, 24, 36, np.float64)
            names = [r.name for r in spans.tracer.snapshot()]
        finally:
            spans.tracer.reset()
            spans.tracer.enabled = was_enabled
        assert any(nm.startswith("op.stream.") for nm in names), names
        assert any(nm.startswith("pass.") for nm in names), names
        assert "stream.band" in names, names
        snap = metrics.registry.snapshot()
        assert "stream.transpose" in snap["timers"]
        assert snap["counters"].get("stream.bands", 0) >= 1

    def test_larger_than_scratch_budget(self, tmp_path):
        """A deliberately big-ish file: the strict path only ever holds one
        row/column of scratch."""
        m, n = 300, 500
        A = np.arange(m * n, dtype=np.float32).reshape(m, n)
        path = _write(tmp_path, A)
        transpose_file_inplace(path, m, n, np.float32)
        got = np.fromfile(path, dtype=np.float32)
        np.testing.assert_array_equal(got, A.T.ravel())
