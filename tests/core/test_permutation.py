"""Tests for the permutation algebra."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.permutation import Permutation

sizes = st.integers(min_value=0, max_value=64)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


def random_perm(k: int, seed: int) -> Permutation:
    return Permutation.random(k, np.random.default_rng(seed))


class TestConstruction:
    def test_identity(self):
        p = Permutation.identity(5)
        assert p.is_identity()
        np.testing.assert_array_equal(p(np.arange(5)), np.arange(5))

    def test_rejects_non_bijection(self):
        with pytest.raises(ValueError):
            Permutation([0, 0, 1])
        with pytest.raises(ValueError):
            Permutation([0, 3])
        with pytest.raises(ValueError):
            Permutation([-1, 0])

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            Permutation(np.zeros((2, 2), dtype=np.int64))

    @given(st.integers(1, 40), st.integers(-100, 100))
    def test_rotation_convention(self, k, amount):
        """Matches the paper: x'[i] = x[(i + amount) mod k]."""
        p = Permutation.rotation(k, amount)
        x = np.arange(k)
        y = p(x)
        for i in range(k):
            assert y[i] == x[(i + amount) % k]

    def test_from_function_validates(self):
        with pytest.raises(ValueError):
            Permutation.from_function(3, lambda i: 0)


class TestAlgebra:
    @given(sizes, seeds)
    def test_inverse_roundtrip(self, k, seed):
        p = random_perm(k, seed)
        assert (p @ p.inverse()).is_identity()
        assert (p.inverse() @ p).is_identity()

    @given(sizes, seeds)
    def test_gather_scatter_duality(self, k, seed):
        """Scattering with g equals gathering with g^{-1} (Eq. 11-14)."""
        p = random_perm(k, seed)
        x = np.random.default_rng(seed).standard_normal(k)
        np.testing.assert_array_equal(p.apply_scatter(x), p.inverse()(x))

    @given(sizes, seeds, seeds)
    def test_composition_semantics(self, k, s1, s2):
        """(p @ q)(x) == q(p(x)): p applied first."""
        p, q = random_perm(k, s1), random_perm(k, s2)
        x = np.random.default_rng(s1 ^ s2).standard_normal(k)
        np.testing.assert_array_equal((p @ q)(x), q(p(x)))

    @given(sizes, seeds)
    def test_composition_with_identity(self, k, seed):
        p = random_perm(k, seed)
        e = Permutation.identity(k)
        assert (p @ e) == p
        assert (e @ p) == p

    def test_size_mismatch_raises(self):
        with pytest.raises(ValueError):
            Permutation.identity(3) @ Permutation.identity(4)


class TestCycles:
    @given(sizes, seeds)
    def test_cycles_partition_domain(self, k, seed):
        p = random_perm(k, seed)
        elements = [x for cyc in p.cycles() for x in cyc]
        assert sorted(elements) == list(range(k))

    @given(st.integers(1, 40), st.integers(0, 40))
    def test_rotation_cycle_structure(self, k, r):
        """Section 4.6: rotating k elements by r yields gcd(k, r) cycles of
        length k / gcd(k, r)."""
        p = Permutation.rotation(k, r)
        z = int(np.gcd(k, r % k)) if r % k else k
        lengths = p.cycle_lengths()
        if r % k == 0:
            assert lengths == [1] * k
        else:
            assert len(lengths) == z
            assert all(length == k // z for length in lengths)

    @given(sizes, seeds)
    def test_order_annihilates(self, k, seed):
        p = random_perm(k, seed)
        acc = Permutation.identity(k)
        for _ in range(p.order()):
            acc = acc @ p
        assert acc.is_identity()

    def test_identity_cycles_are_fixed_points(self):
        assert Permutation.identity(4).cycle_lengths() == [1, 1, 1, 1]
