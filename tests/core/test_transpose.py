"""End-to-end tests for the C2R/R2C kernels and the public API."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    TransposePlan,
    WorkCounter,
    c2r_transpose,
    choose_algorithm,
    r2c_transpose,
    transpose,
    transpose_inplace,
)

from ..conftest import dim_pairs, element_dtypes

variants = st.sampled_from(["gather", "scatter", "restricted"])
aux_modes = st.sampled_from(["strict", "blocked"])
orders = st.sampled_from(["C", "F"])
algorithms = st.sampled_from(["auto", "c2r", "r2c"])


class TestC2R:
    @given(dim_pairs, variants, aux_modes)
    def test_transposes_rowmajor(self, mn, variant, aux):
        """Theorem 1: C2R == transposition for row-major arrays."""
        m, n = mn
        A = np.arange(m * n, dtype=np.int64).reshape(m, n)
        buf = A.ravel().copy()
        c2r_transpose(buf, m, n, variant=variant, aux=aux)
        np.testing.assert_array_equal(buf.reshape(n, m), A.T)

    @given(dim_pairs, variants)
    def test_strict_equals_blocked(self, mn, variant):
        m, n = mn
        A = np.arange(m * n, dtype=np.int64).reshape(m, n)
        s = A.ravel().copy()
        b = A.ravel().copy()
        c2r_transpose(s, m, n, variant=variant, aux="strict")
        c2r_transpose(b, m, n, variant=variant, aux="blocked")
        np.testing.assert_array_equal(s, b)

    @given(dim_pairs, variants)
    def test_theorem6_work_bound(self, mn, variant):
        """Theorem 6: Algorithm 1 reads and writes each element at most 6
        times (3 passes x 1 read + 1 write).  The restricted variant splits
        the column shuffle into two passes, so its bound is 8 accesses."""
        m, n = mn
        buf = np.arange(m * n, dtype=np.int64)
        cnt = WorkCounter()
        c2r_transpose(buf, m, n, variant=variant, aux="strict", counter=cnt)
        passes = 4 if variant == "restricted" else 3
        assert cnt.reads <= passes * m * n
        assert cnt.writes <= passes * m * n
        assert cnt.total <= 2 * passes * m * n

    @given(dim_pairs)
    def test_coprime_skips_rotation_work(self, mn):
        """When gcd(m, n) == 1 the pre-rotation pass vanishes: at most two
        passes of work are performed."""
        m, n = mn
        if np.gcd(m, n) != 1:
            return
        buf = np.arange(m * n, dtype=np.int64)
        cnt = WorkCounter()
        c2r_transpose(buf, m, n, variant="gather", aux="strict", counter=cnt)
        assert cnt.total <= 4 * m * n

    def test_bad_variant_rejected(self):
        with pytest.raises(ValueError):
            c2r_transpose(np.zeros(6), 2, 3, variant="bogus")

    def test_bad_aux_rejected(self):
        with pytest.raises(ValueError):
            c2r_transpose(np.zeros(6), 2, 3, aux="bogus")

    def test_counter_requires_strict(self):
        with pytest.raises(ValueError):
            c2r_transpose(np.zeros(6), 2, 3, aux="blocked", counter=WorkCounter())

    def test_wrong_buffer_size_rejected(self):
        with pytest.raises(ValueError):
            c2r_transpose(np.zeros(5), 2, 3)


class TestR2C:
    @given(dim_pairs, variants, aux_modes)
    def test_inverts_c2r(self, mn, variant, aux):
        m, n = mn
        A = np.arange(m * n, dtype=np.int64)
        buf = A.copy()
        c2r_transpose(buf, m, n)
        r2c_transpose(buf, m, n, variant=variant, aux=aux)
        np.testing.assert_array_equal(buf, A)

    @given(dim_pairs, variants, aux_modes)
    def test_c2r_inverts_r2c(self, mn, variant, aux):
        m, n = mn
        A = np.arange(m * n, dtype=np.int64)
        buf = A.copy()
        r2c_transpose(buf, m, n, variant=variant, aux=aux)
        c2r_transpose(buf, m, n)
        np.testing.assert_array_equal(buf, A)

    @given(dim_pairs, aux_modes)
    def test_transposes_colmajor(self, mn, aux):
        """Theorem 1: R2C == transposition for column-major arrays."""
        m, n = mn
        A = np.arange(m * n, dtype=np.int64).reshape(m, n)
        buf = A.ravel(order="F").copy()
        r2c_transpose(buf, m, n, aux=aux)
        np.testing.assert_array_equal(buf, A.T.ravel(order="F"))

    @given(dim_pairs, variants)
    def test_strict_equals_blocked(self, mn, variant):
        m, n = mn
        A = np.arange(m * n, dtype=np.int64)
        s, b = A.copy(), A.copy()
        r2c_transpose(s, m, n, variant=variant, aux="strict")
        r2c_transpose(b, m, n, variant=variant, aux="blocked")
        np.testing.assert_array_equal(s, b)

    @given(dim_pairs)
    def test_theorem6_work_bound(self, mn):
        m, n = mn
        buf = np.arange(m * n, dtype=np.int64)
        cnt = WorkCounter()
        r2c_transpose(buf, m, n, aux="strict", counter=cnt)
        assert cnt.total <= 6 * m * n


class TestTheorem2:
    @given(dim_pairs, aux_modes)
    def test_r2c_with_swapped_dims_transposes_rowmajor(self, mn, aux):
        m, n = mn
        A = np.arange(m * n, dtype=np.int64).reshape(m, n)
        buf = A.ravel().copy()
        # Swap dimensions, then R2C: transposes a row-major array.
        r2c_transpose(buf, n, m, aux=aux)
        np.testing.assert_array_equal(buf.reshape(n, m), A.T)

    @given(dim_pairs, aux_modes)
    def test_c2r_with_swapped_dims_transposes_colmajor(self, mn, aux):
        m, n = mn
        A = np.arange(m * n, dtype=np.int64).reshape(m, n)
        buf = A.ravel(order="F").copy()
        c2r_transpose(buf, n, m, aux=aux)
        np.testing.assert_array_equal(buf, A.T.ravel(order="F"))


class TestPublicAPI:
    @given(dim_pairs, orders, algorithms, element_dtypes)
    @settings(max_examples=60)
    def test_transpose_inplace_all_paths(self, mn, order, algorithm, dtype):
        m, n = mn
        A = np.arange(m * n, dtype=dtype).reshape(m, n)
        buf = A.ravel(order=order).copy()
        out = transpose_inplace(buf, m, n, order, algorithm=algorithm)
        assert out is buf
        np.testing.assert_array_equal(buf, A.T.ravel(order=order))

    @given(dim_pairs)
    def test_heuristic(self, mn):
        m, n = mn
        assert choose_algorithm(m, n) == ("c2r" if m > n else "r2c")

    def test_bad_algorithm_rejected(self):
        with pytest.raises(ValueError):
            transpose_inplace(np.zeros(6), 2, 3, algorithm="quantum")

    def test_bad_order_rejected(self):
        with pytest.raises(ValueError):
            transpose_inplace(np.zeros(6), 2, 3, "Z")

    @given(dim_pairs)
    def test_transpose_view_shares_memory(self, mn):
        m, n = mn
        A = np.arange(m * n, dtype=np.float64).reshape(m, n)
        expected = A.copy().T
        B = transpose(A)
        assert B.shape == (n, m)
        assert np.shares_memory(A, B)
        np.testing.assert_array_equal(B, expected)

    @given(dim_pairs)
    def test_transpose_fortran_arrays(self, mn):
        m, n = mn
        A = np.asfortranarray(np.arange(m * n, dtype=np.float64).reshape(m, n))
        expected = A.copy().T
        B = transpose(A)
        np.testing.assert_array_equal(B, expected)

    def test_transpose_rejects_non2d(self):
        with pytest.raises(ValueError):
            transpose(np.zeros(6))

    def test_transpose_rejects_noncontiguous(self):
        A = np.zeros((8, 8))[::2, ::2]
        with pytest.raises(ValueError):
            transpose(A)

    def test_double_transpose_is_identity(self):
        A = np.random.default_rng(0).standard_normal((7, 12))
        orig = A.copy()
        B = transpose(A)
        C = transpose(B)
        np.testing.assert_array_equal(C, orig)


class TestPlan:
    @given(dim_pairs, orders, algorithms)
    @settings(max_examples=60)
    def test_plan_matches_direct_call(self, mn, order, algorithm):
        m, n = mn
        plan = TransposePlan(m, n, order, algorithm)
        A = np.arange(m * n, dtype=np.float64).reshape(m, n)
        via_plan = A.ravel(order=order).copy()
        direct = A.ravel(order=order).copy()
        plan.execute(via_plan)
        transpose_inplace(direct, m, n, order, algorithm=algorithm)
        np.testing.assert_array_equal(via_plan, direct)

    def test_plan_reusable(self):
        plan = TransposePlan(6, 4)
        rng = np.random.default_rng(1)
        for _ in range(3):
            A = rng.standard_normal((6, 4))
            buf = A.ravel().copy()
            plan.execute(buf)
            np.testing.assert_array_equal(buf.reshape(4, 6), A.T)

    def test_plan_validates_buffer(self):
        with pytest.raises(ValueError):
            TransposePlan(2, 3).execute(np.zeros(7))

    def test_plan_repr_and_footprint(self):
        plan = TransposePlan(8, 6, "C", "c2r")
        assert "c2r" in repr(plan)
        assert plan.scratch_bytes > 0

    def test_plan_rejects_bad_args(self):
        with pytest.raises(ValueError):
            TransposePlan(2, 3, order="X")
        with pytest.raises(ValueError):
            TransposePlan(2, 3, algorithm="warp")
