"""Pin the worked examples printed in the paper (Figures 1 and 2).

These tests hard-code the matrices shown in the paper so any drift in
conventions (rotation direction, gather/scatter duality, linearization) is
caught immediately against ground truth the authors published.
"""

from __future__ import annotations

import numpy as np

from repro.core import c2r_transpose, r2c_transpose
from repro.core import steps
from repro.core.indexing import Decomposition
from repro.core.reference import c2r_oracle, r2c_oracle


class TestFigure1:
    """m = 3, n = 8: R2C sends the row-major grid to the column-cycled grid."""

    A = np.array(
        [
            [0, 1, 2, 3, 4, 5, 6, 7],
            [8, 9, 10, 11, 12, 13, 14, 15],
            [16, 17, 18, 19, 20, 21, 22, 23],
        ]
    )
    B = np.array(
        [
            [0, 3, 6, 9, 12, 15, 18, 21],
            [1, 4, 7, 10, 13, 16, 19, 22],
            [2, 5, 8, 11, 14, 17, 20, 23],
        ]
    )

    def test_r2c_oracle_matches_left_to_right(self):
        np.testing.assert_array_equal(r2c_oracle(self.A), self.B)

    def test_c2r_oracle_matches_right_to_left(self):
        np.testing.assert_array_equal(c2r_oracle(self.B), self.A)

    def test_r2c_kernel_matches(self):
        buf = self.A.ravel().copy()
        r2c_transpose(buf, 3, 8)
        np.testing.assert_array_equal(buf.reshape(3, 8), self.B)

    def test_c2r_kernel_matches(self):
        buf = self.B.ravel().copy()
        c2r_transpose(buf, 3, 8)
        np.testing.assert_array_equal(buf.reshape(3, 8), self.A)

    def test_element_16_moves_to_row1_col5(self):
        """The Section 2 worked example around Eq. 14."""
        B = r2c_oracle(self.A)
        assert self.A[2, 0] == 16
        assert B[1, 5] == 16


class TestFigure2:
    """The full 4 x 8 C2R trace: column rotate -> row shuffle -> col shuffle.

    The figure's four panels, top to bottom.  The starting matrix is the one
    whose row-major buffer holds the column-interleaved values; the final
    buffer is 0..31 in order, which viewed as 8 x 4 is the transpose.
    """

    start = np.array(
        [
            [0, 4, 8, 12, 16, 20, 24, 28],
            [1, 5, 9, 13, 17, 21, 25, 29],
            [2, 6, 10, 14, 18, 22, 26, 30],
            [3, 7, 11, 15, 19, 23, 27, 31],
        ]
    )
    after_rotate = np.array(
        [
            [0, 4, 9, 13, 18, 22, 27, 31],
            [1, 5, 10, 14, 19, 23, 24, 28],
            [2, 6, 11, 15, 16, 20, 25, 29],
            [3, 7, 8, 12, 17, 21, 26, 30],
        ]
    )
    after_row_shuffle = np.array(
        [
            [0, 9, 18, 27, 4, 13, 22, 31],
            [24, 1, 10, 19, 28, 5, 14, 23],
            [16, 25, 2, 11, 20, 29, 6, 15],
            [8, 17, 26, 3, 12, 21, 30, 7],
        ]
    )
    final = np.arange(32).reshape(4, 8)

    def _dec(self) -> Decomposition:
        return Decomposition.of(4, 8)

    def test_panels_are_consistent(self):
        """Data-entry sanity: the final buffer viewed as 8 x 4 is the
        transpose of the starting matrix."""
        np.testing.assert_array_equal(self.final.reshape(8, 4), self.start.T)

    def test_step1_column_rotation(self):
        dec = self._dec()
        V = self.start.copy()
        steps.rotate_columns_strict(V, dec)
        np.testing.assert_array_equal(V, self.after_rotate)

    def test_step2_row_shuffle(self):
        dec = self._dec()
        V = self.after_rotate.copy()
        steps.shuffle_rows_strict(V, dec, gather=True, use_dprime=False)
        np.testing.assert_array_equal(V, self.after_row_shuffle)

    def test_step3_column_shuffle_completes(self):
        buf = self.start.ravel().copy()
        c2r_transpose(buf, 4, 8)
        np.testing.assert_array_equal(buf.reshape(4, 8), self.final)

    def test_full_c2r_trace(self):
        buf = self.start.ravel().copy()
        c2r_transpose(buf, 4, 8)
        # Viewed as 8 x 4, the buffer is the transpose.
        np.testing.assert_array_equal(buf.reshape(8, 4), self.start.T)
