"""ResidentWindow: byte parsing, band load/store round trips, accounting,
and the flush/close lifecycle."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stream.window import (
    DEFAULT_WINDOW_BYTES,
    WINDOW_ENV,
    ResidentWindow,
    default_window_bytes,
    parse_bytes,
)


def _write(tmp_path, A: np.ndarray):
    path = tmp_path / "w.bin"
    A.tofile(path)
    return path


class TestParseBytes:
    @pytest.mark.parametrize("text,want", [
        ("64", 64),
        ("64k", 64 * 1024),
        ("2m", 2 * 1024 ** 2),
        ("1g", 1024 ** 3),
        ("8M", 8 * 1024 ** 2),
        (4096, 4096),
    ])
    def test_accepted_forms(self, text, want):
        assert parse_bytes(text) == want

    @pytest.mark.parametrize("text", ["", "x", "12q", "-4", 0, -1])
    def test_rejected_forms(self, text):
        with pytest.raises(ValueError):
            parse_bytes(text)

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(WINDOW_ENV, "8m")
        assert default_window_bytes() == 8 * 1024 ** 2
        monkeypatch.delenv(WINDOW_ENV)
        assert default_window_bytes() == DEFAULT_WINDOW_BYTES


class TestResidentWindow:
    def test_size_mismatch_rejected(self, tmp_path):
        path = tmp_path / "bad.bin"
        np.zeros(10, dtype=np.float64).tofile(path)
        with pytest.raises(ValueError, match="bytes"):
            ResidentWindow(path, 4, 4, np.float64)

    def test_row_band_round_trip(self, tmp_path):
        A = np.arange(20 * 12, dtype=np.int64).reshape(20, 12)
        path = _write(tmp_path, A)
        with ResidentWindow(path, 20, 12, np.int64, window_bytes=4096) as w:
            band = w.load_rows(5, 9)
            np.testing.assert_array_equal(band, A[5:9])
            w.store_rows(5, 9, band[::-1].copy())
        got = np.fromfile(path, dtype=np.int64).reshape(20, 12)
        np.testing.assert_array_equal(got[5:9], A[5:9][::-1])
        np.testing.assert_array_equal(got[:5], A[:5])
        np.testing.assert_array_equal(got[9:], A[9:])

    def test_col_band_round_trip_with_tiny_io_block(self, tmp_path):
        # A sub-row io block forces many strided sub-copies; the floor
        # keeps it at one page, exercising the block loop.
        A = np.arange(64 * 48, dtype=np.float32).reshape(64, 48)
        path = _write(tmp_path, A)
        w = ResidentWindow(
            path, 64, 48, np.float32, window_bytes=8192, io_block_bytes=4096
        )
        band = w.load_cols(10, 20)
        np.testing.assert_array_equal(band, A[:, 10:20])
        w.store_cols(10, 20, band * 0 - 1)
        w.close()
        got = np.fromfile(path, dtype=np.float32).reshape(64, 48)
        assert (got[:, 10:20] == -1).all()
        np.testing.assert_array_equal(got[:, :10], A[:, :10])
        np.testing.assert_array_equal(got[:, 20:], A[:, 20:])

    def test_byte_accounting(self, tmp_path):
        A = np.zeros((16, 16), dtype=np.float64)
        path = _write(tmp_path, A)
        with ResidentWindow(path, 16, 16, np.float64) as w:
            band = w.load_rows(0, 8)
            w.store_rows(0, 8, band)
            w.load_cols(0, 4)
            assert w.bytes_read == 8 * 16 * 8 + 16 * 4 * 8
            assert w.bytes_written == 8 * 16 * 8
            assert w.loads == 2 and w.stores == 1

    def test_load_into_preallocated_buffer(self, tmp_path):
        A = np.arange(12 * 10, dtype=np.int32).reshape(12, 10)
        path = _write(tmp_path, A)
        with ResidentWindow(path, 12, 10, np.int32) as w:
            out = np.empty((3, 10), dtype=np.int32)
            band = w.load_rows(4, 7, out=out)
            assert band is out
            np.testing.assert_array_equal(out, A[4:7])

    def test_close_is_idempotent(self, tmp_path):
        path = _write(tmp_path, np.zeros((4, 4)))
        w = ResidentWindow(path, 4, 4, np.float64)
        w.close()
        w.close()
        assert w.view is None

    def test_exit_on_exception_does_not_mask(self, tmp_path):
        path = _write(tmp_path, np.zeros((4, 4)))
        with pytest.raises(RuntimeError, match="boom"):
            with ResidentWindow(path, 4, 4, np.float64):
                raise RuntimeError("boom")
