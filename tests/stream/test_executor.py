"""BandedExecutor: byte-exact banded transposes across shapes, orders,
algorithms and backends, schedule-proof gating, and failure semantics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stream import (
    BandedExecutor,
    BandedScheduleError,
    transpose_file_inplace,
)
from repro.stream import executor as executor_mod

#: a window small enough to force many bands on every test shape
TINY_WINDOW = 64 * 1024


def _write(tmp_path, A: np.ndarray, order: str = "C"):
    path = tmp_path / "m.bin"
    A.ravel(order=order).tofile(path)
    return path


def _read(path, n, m, dtype, order):
    flat = np.fromfile(path, dtype=dtype)
    return flat.reshape(n, m) if order == "C" else flat.reshape(n, m, order="F")


class TestBandedTranspose:
    @pytest.mark.parametrize("m,n", [
        (8, 8), (12, 18), (18, 12), (31, 17), (40, 25), (96, 64), (17, 1),
    ])
    @pytest.mark.parametrize("order", ["C", "F"])
    def test_shapes_and_orders(self, tmp_path, m, n, order):
        A = np.arange(m * n, dtype=np.int64).reshape(m, n)
        path = _write(tmp_path, A, order)
        stats = transpose_file_inplace(
            path, m, n, np.int64, order, window_bytes=TINY_WINDOW
        )
        np.testing.assert_array_equal(
            _read(path, n, m, np.int64, order), A.T
        )
        assert stats["m"] == m and stats["n"] == n
        assert stats["bands"] >= 1 and stats["passes"] >= 2

    @pytest.mark.parametrize("algorithm", ["auto", "c2r", "r2c"])
    def test_algorithms(self, tmp_path, algorithm):
        A = np.arange(48 * 36, dtype=np.float64).reshape(48, 36)
        path = _write(tmp_path, A)
        stats = transpose_file_inplace(
            path, 48, 36, np.float64,
            algorithm=algorithm, window_bytes=TINY_WINDOW,
        )
        np.testing.assert_array_equal(_read(path, 36, 48, np.float64, "C"), A.T)
        if algorithm != "auto":
            assert stats["algorithm"] == algorithm

    def test_many_bands_forced(self, tmp_path):
        # 4 KiB window over a 72 KiB file: every pass must band.
        m, n = 96, 96
        A = np.arange(m * n, dtype=np.int64).reshape(m, n)
        path = _write(tmp_path, A)
        stats = transpose_file_inplace(
            path, m, n, np.int64, window_bytes=4096
        )
        assert stats["bands"] > stats["passes"]
        np.testing.assert_array_equal(_read(path, n, m, np.int64, "C"), A.T)

    def test_threaded_chunks_within_bands(self, tmp_path):
        m, n = 60, 84
        A = np.arange(m * n, dtype=np.float64).reshape(m, n)
        path = _write(tmp_path, A)
        with BandedExecutor(3, window_bytes=TINY_WINDOW) as ex:
            stats = ex.transpose_file(path, m, n, np.float64)
        assert stats["threads"] == 3
        np.testing.assert_array_equal(_read(path, n, m, np.float64, "C"), A.T)

    def test_executor_reuse_across_files(self, tmp_path):
        with BandedExecutor(2, window_bytes=TINY_WINDOW) as ex:
            for i, (m, n) in enumerate([(12, 18), (25, 40)]):
                A = np.arange(m * n, dtype=np.int32).reshape(m, n)
                path = tmp_path / f"f{i}.bin"
                A.tofile(path)
                ex.transpose_file(path, m, n, np.int32)
                np.testing.assert_array_equal(
                    _read(path, n, m, np.int32, "C"), A.T
                )

    def test_round_trip_restores_file(self, tmp_path):
        A = np.random.default_rng(7).standard_normal((37, 53))
        path = _write(tmp_path, A)
        transpose_file_inplace(path, 37, 53, np.float64, window_bytes=4096)
        transpose_file_inplace(path, 53, 37, np.float64, window_bytes=4096)
        np.testing.assert_array_equal(np.fromfile(path, np.float64), A.ravel())

    @pytest.mark.parametrize("algorithm", ["c2r", "r2c"])
    def test_native_sized_bands(self, tmp_path, algorithm):
        """Shapes above the native min-elems floor: the banded path runs
        the compiled row kernels against a shifted band base (regression:
        the r2c kernel was once built for the transposed shape, writing
        out of bounds)."""
        m, n = 300, 500  # 150k elements > REPRO_NATIVE_MIN_ELEMS default
        A = np.arange(m * n, dtype=np.float32).reshape(m, n)
        path = _write(tmp_path, A)
        stats = transpose_file_inplace(
            path, m, n, np.float32,
            algorithm=algorithm, window_bytes=TINY_WINDOW,
        )
        assert stats["bands"] > stats["passes"]
        np.testing.assert_array_equal(
            _read(path, n, m, np.float32, "C"), A.T
        )

    def test_mp_backend(self, tmp_path):
        m, n = 48, 60
        A = np.arange(m * n, dtype=np.float64).reshape(m, n)
        path = _write(tmp_path, A)
        with BandedExecutor(
            2, backend="mp", window_bytes=TINY_WINDOW
        ) as ex:
            stats = ex.transpose_file(path, m, n, np.float64)
        assert stats["backend"] == "mp"
        np.testing.assert_array_equal(_read(path, n, m, np.float64, "C"), A.T)


class TestValidationAndFailure:
    def test_bad_order_rejected(self, tmp_path):
        path = _write(tmp_path, np.zeros((2, 3)))
        with pytest.raises(ValueError):
            transpose_file_inplace(path, 2, 3, np.float64, "Z")

    def test_bad_algorithm_rejected(self, tmp_path):
        path = _write(tmp_path, np.zeros((2, 3)))
        with pytest.raises(ValueError):
            transpose_file_inplace(path, 2, 3, np.float64, algorithm="qr")

    def test_size_mismatch_rejected(self, tmp_path):
        path = tmp_path / "bad.bin"
        np.zeros(7).tofile(path)
        with pytest.raises(ValueError, match="bytes"):
            transpose_file_inplace(path, 3, 4, np.float64)

    def test_unproven_schedule_refuses_to_run(self, tmp_path, monkeypatch):
        """If the banded race proof fails, the executor must not touch the
        file."""
        from repro.analysis import racecheck

        class FailingReport:
            ok = False
            failures = [("pass", "band0", "band1")]

        m, n = 23, 29  # fresh shape: not in the module-level proof memo
        monkeypatch.setattr(
            racecheck, "check_banded_schedule",
            lambda *a, **k: FailingReport(),
        )
        A = np.arange(m * n, dtype=np.float64).reshape(m, n)
        path = _write(tmp_path, A)
        with pytest.raises(BandedScheduleError):
            transpose_file_inplace(path, m, n, np.float64, window_bytes=4096)
        np.testing.assert_array_equal(
            np.fromfile(path, np.float64).reshape(m, n), A
        )

    def test_pass_failure_propagates_after_flush(self, tmp_path, monkeypatch):
        """A mid-run failure surfaces the original error (flush-or-raise:
        the window flush on the unwind path must not mask it)."""
        m, n = 16, 24
        path = _write(tmp_path, np.arange(m * n, dtype=np.float64).reshape(m, n))

        def boom(*a, **k):
            raise RuntimeError("injected pass failure")

        monkeypatch.setattr(BandedExecutor, "_run_one_band", boom)
        with BandedExecutor(1, window_bytes=4096) as ex:
            with pytest.raises(RuntimeError, match="injected pass failure"):
                ex.transpose_file(path, m, n, np.float64)

    def test_proof_memo_covers_repeat_runs(self, tmp_path):
        before = len(executor_mod._PROVEN)
        for _ in range(2):
            A = np.arange(12 * 18, dtype=np.int64).reshape(12, 18)
            path = _write(tmp_path, A)
            transpose_file_inplace(path, 12, 18, np.int64, window_bytes=4096)
        # second run re-proves nothing: every (shape, bands, algorithm)
        # key was already in the memo
        assert len(executor_mod._PROVEN) > 0
        assert len(executor_mod._PROVEN) >= before


class TestStats:
    def test_stats_shape(self, tmp_path):
        A = np.arange(20 * 30, dtype=np.float32).reshape(20, 30)
        path = _write(tmp_path, A)
        stats = transpose_file_inplace(
            path, 20, 30, np.float32, window_bytes=TINY_WINDOW
        )
        for key in ("m", "n", "order", "algorithm", "passes", "bands",
                    "window_bytes", "backend", "threads", "bytes_read",
                    "bytes_written", "seconds"):
            assert key in stats, key
        assert stats["bytes_read"] >= A.nbytes * stats["passes"]
        assert stats["bytes_written"] >= A.nbytes * stats["passes"]
