"""Bounded-residency proof: a streamed transpose of a file many times the
window size must keep peak RSS near the window, and stay byte-exact.

Runs in a subprocess so the ``VmHWM`` high-water mark reflects only the
streamed run, not whatever the pytest session touched earlier.  File size
scales with ``REPRO_STREAM_TEST_BYTES`` (default 96 MiB — the CI stream
job raises it to 1 GiB and tightens nothing else).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

#: default file size: 12x the window, big enough that an unbounded memmap
#: walk would blow the cap, small enough for the tier-1 suite
DEFAULT_TEST_BYTES = 96 * 1024 * 1024

_CHILD = r"""
import json, os, sys
import numpy as np

src_dir, path, total_bytes = sys.argv[1], sys.argv[2], int(sys.argv[3])
sys.path.insert(0, src_dir)

def vm_hwm_kib():
    with open("/proc/self/status") as fh:
        for line in fh:
            if line.startswith("VmHWM:"):
                return int(line.split()[1])
    raise RuntimeError("no VmHWM")

# Analytic pattern A[i, j] = i * n + j (uint32): every element's value is
# its row-major flat index, so any block of the transposed file can be
# verified without materialising the original.
n = 4096
m = total_bytes // (n * 4)
write_block = 256
with open(path, "wb") as fh:
    for i0 in range(0, m, write_block):
        i1 = min(m, i0 + write_block)
        block = (
            np.arange(i0 * n, i1 * n, dtype=np.int64) % (1 << 32)
        ).astype(np.uint32)
        fh.write(block.tobytes())

window = total_bytes // 12
before = vm_hwm_kib()
from repro.stream import transpose_file_inplace
stats = transpose_file_inplace(path, m, n, np.uint32, window_bytes=window)
after = vm_hwm_kib()

# Blockwise byte-exact check: transposed flat index k holds value
# (k % m) * n + (k // m).
ok = True
check = np.empty(0)
with open(path, "rb") as fh:
    per = 1 << 20
    for k0 in range(0, m * n, per):
        count = min(per, m * n - k0)
        got = np.frombuffer(fh.read(count * 4), dtype=np.uint32)
        k = np.arange(k0, k0 + count, dtype=np.int64)
        want = (((k % m) * n + k // m) % (1 << 32)).astype(np.uint32)
        if not np.array_equal(got, want):
            ok = False
            break

print(json.dumps({
    "before_kib": before, "after_kib": after, "window": window,
    "bands": stats["bands"], "exact": ok,
}))
"""


def test_streamed_rss_stays_near_window(tmp_path):
    total = int(os.environ.get("REPRO_STREAM_TEST_BYTES", DEFAULT_TEST_BYTES))
    src_dir = str(Path(__file__).resolve().parents[2] / "src")
    script = tmp_path / "residency_child.py"
    script.write_text(_CHILD)
    data = tmp_path / "big.bin"
    out = subprocess.run(
        [sys.executable, str(script), src_dir, str(data), str(total)],
        capture_output=True, text=True, timeout=600,
    )
    assert out.returncode == 0, out.stderr[-2000:]
    rep = json.loads(out.stdout.strip().splitlines()[-1])
    assert rep["exact"], "streamed transpose is not byte-exact"
    assert rep["bands"] >= 3, rep

    # Peak RSS growth over the pre-transpose baseline: one band buffer
    # (<= window) + gather index/temporary arrays (int64 indices over
    # uint32 data ~= 2x the band) + the transient I/O block, plus fixed
    # interpreter/numpy slack.  An unbounded memmap walk would grow by
    # ~total_bytes and blow through this cap.
    delta_bytes = (rep["after_kib"] - rep["before_kib"]) * 1024
    cap = 5 * rep["window"] + 48 * 1024 * 1024
    assert delta_bytes <= cap, (
        f"peak RSS grew {delta_bytes / 1e6:.0f} MB; "
        f"cap {cap / 1e6:.0f} MB (window {rep['window'] / 1e6:.0f} MB)"
    )
    assert cap < total, "cap must be meaningfully below the file size"
