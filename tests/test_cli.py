"""Tests for the command-line interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main


class TestInfo:
    def test_info_output(self, capsys):
        assert main(["info", "12", "18"]) == 0
        out = capsys.readouterr().out
        assert "c = gcd = 6" in out
        assert "heuristic algorithm" in out
        assert "GB/s" in out

    def test_info_coprime(self, capsys):
        main(["info", "7", "9"])
        out = capsys.readouterr().out
        assert "pre-rotation pass needed: False" in out
        assert "4 accesses/element" in out

    def test_info_skips_cycles_over_limit(self, capsys):
        main(["info", "5000", "7000", "--cycle-limit", "100"])
        out = capsys.readouterr().out
        assert "cycle following:" not in out


class TestTransposeCommand:
    def test_transpose_file(self, tmp_path, capsys):
        A = np.arange(6 * 9, dtype=np.float64).reshape(6, 9)
        path = tmp_path / "a.bin"
        A.tofile(path)
        assert main(["transpose", str(path), "6", "9"]) == 0
        got = np.fromfile(path, dtype=np.float64)
        np.testing.assert_array_equal(got, A.T.ravel())
        assert "transposed" in capsys.readouterr().out

    def test_transpose_dtype_flag(self, tmp_path):
        A = np.arange(4 * 5, dtype=np.int32).reshape(4, 5)
        path = tmp_path / "a.bin"
        A.tofile(path)
        main(["transpose", str(path), "4", "5", "--dtype", "int32"])
        np.testing.assert_array_equal(
            np.fromfile(path, dtype=np.int32), A.T.ravel()
        )


class TestTransposeFileCommand:
    def test_round_trip_restores_original(self, tmp_path, capsys):
        A = np.arange(12 * 7, dtype=np.float64).reshape(12, 7)
        path = tmp_path / "a.bin"
        A.tofile(path)
        assert main(["transpose-file", str(path), "12", "7"]) == 0
        np.testing.assert_array_equal(
            np.fromfile(path, dtype=np.float64), A.T.ravel()
        )
        # Transposing the (7, 12) result brings the file back exactly.
        assert main(["transpose-file", str(path), "7", "12"]) == 0
        np.testing.assert_array_equal(
            np.fromfile(path, dtype=np.float64), A.ravel()
        )
        assert capsys.readouterr().out.count("transposed") == 2

    def test_dtype_and_algorithm_flags(self, tmp_path):
        A = np.arange(6 * 10, dtype=np.int16).reshape(6, 10)
        path = tmp_path / "a.bin"
        A.tofile(path)
        assert main(["transpose-file", str(path), "6", "10",
                     "--dtype", "int16", "--algorithm", "c2r"]) == 0
        np.testing.assert_array_equal(
            np.fromfile(path, dtype=np.int16), A.T.ravel()
        )

    def test_size_mismatch_is_friendly(self, tmp_path, capsys):
        path = tmp_path / "short.bin"
        np.zeros(5).tofile(path)
        assert main(["transpose-file", str(path), "3", "4"]) == 1
        assert "error" in capsys.readouterr().out

    def test_streamed_by_default_reports_bands(self, tmp_path, capsys):
        A = np.arange(64 * 48, dtype=np.float64).reshape(64, 48)
        path = tmp_path / "a.bin"
        A.tofile(path)
        assert main(["transpose-file", str(path), "64", "48",
                     "--window-bytes", "8k"]) == 0
        out = capsys.readouterr().out
        assert "band(s)" in out and "window" in out
        np.testing.assert_array_equal(
            np.fromfile(path, dtype=np.float64), A.T.ravel()
        )

    def test_no_stream_matches_streamed_result(self, tmp_path, capsys):
        A = np.arange(20 * 30, dtype=np.float64).reshape(20, 30)
        path = tmp_path / "a.bin"
        A.tofile(path)
        assert main(["transpose-file", str(path), "20", "30",
                     "--no-stream"]) == 0
        assert "band(s)" not in capsys.readouterr().out
        np.testing.assert_array_equal(
            np.fromfile(path, dtype=np.float64), A.T.ravel()
        )

    def test_threads_route_through_banded_executor(self, tmp_path, capsys):
        A = np.arange(40 * 56, dtype=np.float64).reshape(40, 56)
        path = tmp_path / "a.bin"
        A.tofile(path)
        assert main(["transpose-file", str(path), "40", "56",
                     "--threads", "2", "--window-bytes", "16k"]) == 0
        assert "2 threads worker(s)" in capsys.readouterr().out
        np.testing.assert_array_equal(
            np.fromfile(path, dtype=np.float64), A.T.ravel()
        )

    def test_bad_window_bytes_is_friendly(self, tmp_path, capsys):
        path = tmp_path / "a.bin"
        np.zeros(12).tofile(path)
        assert main(["transpose-file", str(path), "3", "4",
                     "--window-bytes", "12q"]) == 1
        assert "error" in capsys.readouterr().out


class TestServeAndLoadtestCommands:
    def test_serve_max_seconds_drains_clean(self, capsys):
        assert main(["serve", "--port", "0", "--workers", "1",
                     "--max-seconds", "0.3"]) == 0
        out = capsys.readouterr().out
        assert "repro-serve listening" in out
        assert "dropped=0" in out
        assert "drained=True" in out

    def test_loadtest_inproc_smoke(self, capsys):
        assert main(["loadtest", "--inproc", "--workers", "1",
                     "--rate", "200", "--duration", "0.4",
                     "--shapes", "16x12", "--dtype", "float64",
                     "--tiles", "2", "--connections", "4",
                     "--no-reference"]) == 0
        out = capsys.readouterr().out
        assert "achieved" in out
        assert "dropped=0" in out
        assert out.rstrip().endswith("ok")

    def test_loadtest_requires_a_target(self, capsys):
        assert main(["loadtest"]) == 1
        assert "--url or --inproc" in capsys.readouterr().out

    def test_loadtest_rejects_bad_shape_mix(self, capsys):
        assert main(["loadtest", "--inproc", "--shapes", "8y6"]) == 1
        assert "error" in capsys.readouterr().out


class TestBenchAndSelftest:
    def test_bench(self, capsys):
        assert main(["bench", "64", "96", "--repeats", "1"]) == 0
        assert "GB/s" in capsys.readouterr().out

    def test_selftest_passes(self, capsys):
        assert main(["selftest", "--count", "6"]) == 0
        out = capsys.readouterr().out
        assert out.count("OK") >= 8

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestConvertCommand:
    def test_aos_to_soa_file(self, tmp_path, capsys):
        import numpy as np

        N, S = 48, 5
        A = np.arange(N * S, dtype=np.float64)
        path = tmp_path / "aos.bin"
        A.tofile(path)
        assert main(["convert", str(path), str(N), str(S), "--to", "soa"]) == 0
        got = np.fromfile(path, dtype=np.float64).reshape(S, N)
        for k in range(S):
            np.testing.assert_array_equal(got[k], np.arange(N) * S + k)

    def test_roundtrip_via_cli(self, tmp_path):
        import numpy as np

        N, S = 64, 3
        A = np.arange(N * S, dtype=np.float32)
        path = tmp_path / "aos.bin"
        A.tofile(path)
        main(["convert", str(path), str(N), str(S), "--to", "soa",
              "--dtype", "float32"])
        main(["convert", str(path), str(N), str(S), "--to", "aos",
              "--dtype", "float32"])
        np.testing.assert_array_equal(np.fromfile(path, dtype=np.float32), A)

    def test_asta_roundtrip(self, tmp_path):
        import numpy as np

        N, S = 96, 4
        A = np.arange(N * S, dtype=np.float64)
        path = tmp_path / "aos.bin"
        A.tofile(path)
        main(["convert", str(path), str(N), str(S), "--to", "asta"])
        main(["convert", str(path), str(N), str(S), "--to", "unasta"])
        np.testing.assert_array_equal(np.fromfile(path, dtype=np.float64), A)

    def test_size_mismatch_fails(self, tmp_path, capsys):
        import numpy as np

        path = tmp_path / "bad.bin"
        np.zeros(10).tofile(path)
        assert main(["convert", str(path), "4", "4"]) == 1
        assert "error" in capsys.readouterr().out


class TestLandscapeCommand:
    def test_landscape_output(self, capsys):
        assert main(["landscape", "--cells", "3", "--lo", "2000",
                     "--hi", "9000"]) == 0
        out = capsys.readouterr().out
        assert "C2R modeled throughput" in out
        assert out.count("m=") == 3

    def test_r2c_flag(self, capsys):
        main(["landscape", "--algorithm", "r2c", "--cells", "2"])
        assert "R2C" in capsys.readouterr().out


class TestCliErrorPaths:
    def test_transpose_size_mismatch_is_friendly(self, tmp_path, capsys):
        import numpy as np

        path = tmp_path / "short.bin"
        np.zeros(5).tofile(path)
        assert main(["transpose", str(path), "3", "4"]) == 1
        assert "error" in capsys.readouterr().out

    def test_convert_bad_tile_is_friendly(self, tmp_path, capsys):
        import numpy as np

        path = tmp_path / "aos.bin"
        np.zeros(30).tofile(path)  # 10 structs x 3, tile 32 does not divide
        assert main(["convert", str(path), "10", "3", "--to", "asta"]) == 1
        assert "error" in capsys.readouterr().out
