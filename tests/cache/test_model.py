"""Tests for cache-line geometry."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cache import CacheModel
from repro.cache.onchip import OnChipModel


class TestCacheModel:
    def test_defaults_match_k20c(self):
        model = CacheModel()
        assert model.line_bytes == 128
        assert model.itemsize == 8
        assert model.width == 16

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            CacheModel(line_bytes=0)
        with pytest.raises(ValueError):
            CacheModel(itemsize=0)
        with pytest.raises(ValueError):
            CacheModel(line_bytes=8, itemsize=16)

    @given(st.integers(1, 500), st.sampled_from([4, 8, 16]))
    def test_groups_cover_all_columns(self, n, itemsize):
        model = CacheModel(itemsize=itemsize)
        cols = []
        for g in range(model.n_groups(n)):
            sl = model.group_slice(g, n)
            cols.extend(range(sl.start, sl.stop))
        assert cols == list(range(n))

    def test_group_out_of_range(self):
        model = CacheModel()
        with pytest.raises(IndexError):
            model.group_slice(10, 16)

    @given(st.integers(1, 400))
    def test_alignment_criterion(self, n):
        model = CacheModel(line_bytes=128, itemsize=8)
        aligned = model.row_pitch_aligned(n)
        assert aligned == (n % 16 == 0)
        if aligned:
            # every sub-row touches exactly one line
            for i in range(4):
                for g in range(model.n_groups(n)):
                    sl = model.group_slice(g, n)
                    if sl.stop - sl.start == model.width:
                        assert model.subrow_lines(i, g, n) == 1

    @given(st.integers(1, 200), st.integers(1, 64))
    def test_subrow_lines_is_1_or_2(self, n, m):
        model = CacheModel(line_bytes=128, itemsize=8)
        for g in range(model.n_groups(n)):
            assert model.subrow_lines(m - 1, g, n) in (1, 2)

    @given(st.integers(1, 128), st.integers(1, 64))
    def test_straddle_fraction_bounds(self, n, m):
        model = CacheModel(line_bytes=64, itemsize=8)
        f = model.straddle_fraction(m, n)
        assert 0.0 <= f <= 1.0
        if model.row_pitch_aligned(n):
            assert f == 0.0

    def test_small_elements_wide_subrows(self):
        model = CacheModel(line_bytes=128, itemsize=4)
        assert model.width == 32


class TestOnChipModel:
    def test_k20c_row_capacity_from_paper(self):
        """Section 4.5: rows of up to 29440 64-bit elements in one pass."""
        oc = OnChipModel()
        assert oc.max_row_elements(8) == 29440
        assert oc.single_pass(29440, 8)
        assert not oc.single_pass(29441, 8)

    def test_passes(self):
        oc = OnChipModel()
        assert oc.row_shuffle_passes(100, 8) == 1
        assert oc.row_shuffle_passes(10**6, 8) == 2

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            OnChipModel(capacity_bytes=0)
        with pytest.raises(ValueError):
            OnChipModel(usable_fraction=0.0)
        with pytest.raises(ValueError):
            OnChipModel(usable_fraction=1.5)

    def test_float_rows_fit_twice_as_many(self):
        oc = OnChipModel()
        assert oc.max_row_elements(4) == 2 * oc.max_row_elements(8)
