"""Cache-aware kernels must equal their strict counterparts exactly."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import (
    CacheModel,
    c2r_cache_aware,
    cache_aware_rotate,
    cache_aware_row_permute,
)
from repro.core import c2r_transpose
from repro.core import equations as eq
from repro.core import steps
from repro.core.indexing import Decomposition

from ..conftest import dim_pairs

models = st.sampled_from(
    [
        CacheModel(line_bytes=128, itemsize=8),
        CacheModel(line_bytes=64, itemsize=8),
        CacheModel(line_bytes=32, itemsize=4),
        CacheModel(line_bytes=8, itemsize=8),  # degenerate: 1-wide sub-rows
    ]
)


class TestCacheAwareRotate:
    @given(dim_pairs, models, st.integers(0, 2**32 - 1))
    @settings(max_examples=60)
    def test_arbitrary_amounts_match_reference(self, mn, model, seed):
        m, n = mn
        amounts = np.random.default_rng(seed).integers(0, m, size=n)
        A = np.arange(m * n, dtype=np.int64).reshape(m, n)
        got = A.copy()
        cache_aware_rotate(got, amounts, model)
        rows = np.arange(m, dtype=np.int64)[:, None]
        expect = np.take_along_axis(A, (rows + amounts[None, :]) % m, axis=0)
        np.testing.assert_array_equal(got, expect)

    @given(dim_pairs, models)
    @settings(max_examples=60)
    def test_prerotation_amounts(self, mn, model):
        """The C2R pre-rotation (amount j // b) through the cache-aware path
        equals the strict per-column rotation."""
        m, n = mn
        dec = Decomposition.of(m, n)
        A = np.arange(m * n, dtype=np.int64).reshape(m, n)
        got = A.copy()
        amounts = np.arange(n, dtype=np.int64) // dec.b
        cache_aware_rotate(got, amounts, model)
        ref = A.copy()
        steps.rotate_columns_strict(ref, dec)
        np.testing.assert_array_equal(got, ref)

    def test_fine_pass_skipped_when_rotation_slow(self):
        """r(j) = j // b is constant across a line-wide group when b >= w,
        so every group's fine pass is skipped (the Section 4.6 claim)."""
        m, n = 32, 64
        dec = Decomposition.of(m, n)  # c = 32, b = 2 -> NOT slow
        model = CacheModel(line_bytes=16, itemsize=8)  # w = 2 == b
        amounts = np.arange(n) // dec.b
        stats = cache_aware_rotate(
            np.zeros((m, n)), amounts, model
        )
        assert stats.fine_groups_skipped == model.n_groups(n)
        assert stats.fine_groups_processed == 0

    def test_fine_pass_needed_for_fast_rotation(self):
        m, n = 16, 32
        model = CacheModel(line_bytes=128, itemsize=8)  # w = 16
        amounts = np.arange(n) % m  # changes every column
        stats = cache_aware_rotate(np.zeros((m, n)), amounts, model)
        assert stats.fine_groups_processed > 0

    def test_amount_vector_validated(self):
        with pytest.raises(ValueError):
            cache_aware_rotate(np.zeros((4, 6)), np.zeros(5, dtype=np.int64))

    @given(dim_pairs)
    @settings(max_examples=40)
    def test_coarse_moves_each_subrow_at_most_once(self, mn):
        m, n = mn
        model = CacheModel(line_bytes=64, itemsize=8)
        amounts = np.full(n, 1 % m, dtype=np.int64)
        stats = cache_aware_rotate(
            np.arange(m * n, dtype=np.int64).reshape(m, n), amounts, model
        )
        # one move per sub-row when rotation is nontrivial
        if m > 1:
            assert stats.coarse_subrow_moves == m * model.n_groups(n)


class TestCacheAwareRowPermute:
    @given(dim_pairs, models, st.integers(0, 2**32 - 1))
    @settings(max_examples=60)
    def test_matches_fancy_indexing(self, mn, model, seed):
        m, n = mn
        g = np.random.default_rng(seed).permutation(m)
        A = np.arange(m * n, dtype=np.int64).reshape(m, n)
        got = A.copy()
        cache_aware_row_permute(got, g, model)
        np.testing.assert_array_equal(got, A[g, :])

    @given(dim_pairs)
    @settings(max_examples=40)
    def test_q_permutation_matches_strict(self, mn):
        m, n = mn
        dec = Decomposition.of(m, n)
        qg = eq.permute_q_v(dec, np.arange(m, dtype=np.int64))
        A = np.arange(m * n, dtype=np.int64).reshape(m, n)
        got = A.copy()
        cache_aware_row_permute(got, qg)
        ref = A.copy()
        steps.permute_rows_strict(ref, qg)
        np.testing.assert_array_equal(got, ref)

    def test_descriptor_storage_reported(self):
        g = np.array([1, 0, 3, 2, 4])
        stats = cache_aware_row_permute(np.zeros((5, 3)), g)
        assert stats.n_cycles == 2
        assert stats.cycle_descriptor_slots == 4

    def test_gather_validated(self):
        with pytest.raises(ValueError):
            cache_aware_row_permute(np.zeros((4, 3)), np.arange(3))


class TestCacheAwareC2R:
    @given(dim_pairs, models)
    @settings(max_examples=60, deadline=None)
    def test_equals_reference_c2r(self, mn, model):
        m, n = mn
        A = np.arange(m * n, dtype=np.int64)
        got = A.copy()
        c2r_cache_aware(got, m, n, model)
        ref = A.copy()
        c2r_transpose(ref, m, n)
        np.testing.assert_array_equal(got, ref)

    @given(dim_pairs)
    @settings(max_examples=40, deadline=None)
    def test_transposes(self, mn):
        m, n = mn
        A = np.arange(m * n, dtype=np.float64).reshape(m, n)
        buf = A.ravel().copy()
        c2r_cache_aware(buf, m, n)
        np.testing.assert_array_equal(buf.reshape(n, m), A.T)

    def test_stats_reflect_gcd(self):
        stats = c2r_cache_aware(np.arange(35.0), 5, 7)  # coprime
        assert not stats.pre_rotation_performed
        stats = c2r_cache_aware(np.arange(36.0), 6, 6)
        assert stats.pre_rotation_performed

    def test_buffer_validated(self):
        with pytest.raises(ValueError):
            c2r_cache_aware(np.zeros(7), 2, 3)
