"""Tests for analytic rotation cycles and dynamic permutation cycles."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cache.cycles import RotationCycles, permutation_cycles
from repro.core.permutation import Permutation


class TestRotationCycles:
    @given(st.integers(1, 200), st.integers(0, 199))
    def test_counts_match_gcd(self, m, r):
        r %= m
        rc = RotationCycles(m, r)
        if r == 0:
            assert rc.n_cycles == m
            assert rc.cycle_length == 1
        else:
            assert rc.n_cycles == math.gcd(m, r)
            assert rc.cycle_length == m // math.gcd(m, r)

    @given(st.integers(1, 120), st.integers(0, 119))
    def test_cycles_partition_domain(self, m, r):
        r %= m
        rc = RotationCycles(m, r)
        elements = np.concatenate(rc.all_cycles())
        assert sorted(elements.tolist()) == list(range(m))

    @given(st.integers(2, 100), st.integers(1, 99))
    def test_cycles_match_permutation_object(self, m, r):
        """The analytic cycles are exactly the cycles of the rotation
        permutation x'[i] = x[(i + r) mod m]."""
        r %= m
        if r == 0:
            return
        perm = Permutation.rotation(m, r)
        analytic = {frozenset(c.tolist()) for c in RotationCycles(m, r).all_cycles()}
        actual = {frozenset(c) for c in perm.cycles()}
        assert analytic == actual

    @given(st.integers(1, 100), st.integers(0, 99))
    def test_walk_follows_scatter_chain(self, m, r):
        """l_y(x+1) is where l_y(x)'s value moves to under the rotation."""
        r %= m
        rc = RotationCycles(m, r)
        for y in range(min(rc.n_cycles, 4)):
            cyc = rc.cycle(y)
            for x in range(len(cyc) - 1):
                assert (cyc[x] + (m - r)) % m == cyc[x + 1]

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            RotationCycles(0, 0)
        with pytest.raises(ValueError):
            RotationCycles(5, 5)
        with pytest.raises(ValueError):
            RotationCycles(5, -1)


class TestPermutationCycles:
    @given(st.integers(0, 200), st.integers(0, 2**32 - 1))
    def test_storage_bound(self, m, seed):
        """Section 4.7: at most m/2 nontrivial cycles."""
        g = np.random.default_rng(seed).permutation(m)
        cs = permutation_cycles(g)
        assert cs.leaders.shape[0] <= max(m // 2, 0) or m < 2

    @given(st.integers(1, 150), st.integers(0, 2**32 - 1))
    def test_lengths_sum_to_moved_elements(self, m, seed):
        g = np.random.default_rng(seed).permutation(m)
        cs = permutation_cycles(g)
        fixed = int((g == np.arange(m)).sum())
        assert int(cs.lengths.sum()) == m - fixed
        assert (cs.lengths >= 2).all()

    def test_identity_has_no_cycles(self):
        cs = permutation_cycles(np.arange(10))
        assert cs.leaders.size == 0
        assert cs.storage == 0

    def test_single_swap(self):
        cs = permutation_cycles(np.array([1, 0, 2]))
        assert cs.leaders.tolist() == [0]
        assert cs.lengths.tolist() == [2]

    @given(st.integers(1, 100), st.integers(0, 2**32 - 1))
    def test_leaders_are_cycle_minima(self, m, seed):
        g = np.random.default_rng(seed).permutation(m)
        cs = permutation_cycles(g)
        for leader, length in zip(cs.leaders, cs.lengths):
            members = [int(leader)]
            i = int(g[leader])
            while i != leader:
                members.append(i)
                i = int(g[i])
            assert min(members) == leader
            assert len(members) == length
