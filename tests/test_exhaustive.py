"""Exhaustive verification over ALL small shapes.

Property tests sample; these loops cover *every* shape in a box, so any
conceivable small-shape corner (every gcd pattern, every a/b/c combination
up to the bound) is verified outright:

* all 576 shapes m, n ≤ 24 for the main C2R/R2C kernels and their inverse
  relationship;
* all register geometries m ≤ 12, lanes ∈ {2, 4, 8, 16, 32} for the
  in-register transpose;
* all skinny shapes S ≤ 8, N ≤ 64.
"""

from __future__ import annotations

import numpy as np

from repro.aos.skinny import skinny_transpose
from repro.core import c2r_transpose, r2c_transpose
from repro.simd import SimdMachine, register_c2r


class TestExhaustiveSmallShapes:
    def test_every_shape_up_to_24(self):
        for m in range(1, 25):
            for n in range(1, 25):
                A = np.arange(m * n, dtype=np.int64)
                buf = A.copy()
                c2r_transpose(buf, m, n)
                expected = A.reshape(m, n).T.ravel()
                assert np.array_equal(buf, expected), (m, n)
                r2c_transpose(buf, m, n)
                assert np.array_equal(buf, A), ("inverse", m, n)

    def test_every_register_geometry(self):
        for lanes in (2, 4, 8, 16, 32):
            for m in range(1, 13):
                A = np.arange(m * lanes, dtype=np.int64).reshape(m, lanes)
                out = np.stack(
                    register_c2r(SimdMachine(lanes), [A[i].copy() for i in range(m)])
                )
                ref = A.ravel().copy()
                c2r_transpose(ref, m, lanes)
                assert np.array_equal(out, ref.reshape(m, lanes)), (m, lanes)

    def test_every_skinny_shape(self):
        for S in range(1, 9):
            for N in range(1, 65):
                A = np.arange(N * S, dtype=np.int64)
                buf = A.copy()
                skinny_transpose(buf, N, S)
                assert np.array_equal(
                    buf, A.reshape(N, S).T.ravel()
                ), (N, S)

    def test_every_strict_shape_up_to_12(self):
        """The strict (O(max(m,n))-scratch) path, exhaustively."""
        for m in range(1, 13):
            for n in range(1, 13):
                A = np.arange(m * n, dtype=np.int64)
                buf = A.copy()
                c2r_transpose(buf, m, n, aux="strict")
                assert np.array_equal(buf, A.reshape(m, n).T.ravel()), (m, n)
