"""Tests for the shared-memory shuffle fallback machine."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import c2r_transpose
from repro.simd import SimdMachine, SmemSimdMachine, register_c2r, register_r2c


class TestSmemShuffle:
    @given(st.integers(1, 32), st.integers(0, 2**32 - 1))
    def test_same_semantics_as_hardware_shfl(self, n_lanes, seed):
        rng = np.random.default_rng(seed)
        vals = rng.standard_normal(n_lanes)
        src = rng.integers(0, n_lanes, size=n_lanes)
        hw = SimdMachine(n_lanes)
        sw = SmemSimdMachine(n_lanes)
        np.testing.assert_array_equal(hw.shfl(vals, src), sw.shfl(vals, src))

    def test_cost_accounting(self):
        mach = SmemSimdMachine(8)
        mach.shfl(np.arange(8.0), np.arange(8))
        assert mach.counts.shfl == 0
        assert mach.counts.smem_store == 1
        assert mach.counts.smem_load == 1
        assert mach.counts.barrier == 1
        assert mach.counts.total == 3
        mach.reset_counts()
        assert mach.counts.total == 0

    def test_validates_like_hardware(self):
        mach = SmemSimdMachine(4)
        with pytest.raises(ValueError):
            mach.shfl(np.zeros(3), np.zeros(4, dtype=np.int64))
        with pytest.raises(ValueError):
            mach.shfl(np.zeros(4), np.array([0, 1, 2, 4]))


class TestTransposeOnSmemMachine:
    @given(st.tuples(st.integers(1, 16), st.integers(1, 32)))
    @settings(max_examples=50)
    def test_register_c2r_unchanged(self, shape):
        """The full in-register transpose works on the shuffle-less machine
        (Section 6.2.1's fallback claim)."""
        m, n_lanes = shape
        mach = SmemSimdMachine(n_lanes)
        A = np.arange(m * n_lanes, dtype=np.int64).reshape(m, n_lanes)
        out = np.stack(register_c2r(mach, [A[i].copy() for i in range(m)]))
        ref = A.ravel().copy()
        c2r_transpose(ref, m, n_lanes)
        np.testing.assert_array_equal(out, ref.reshape(m, n_lanes))

    def test_smem_traffic_equals_shuffle_count(self):
        """Each emulated shuffle costs one store + one load + one barrier;
        the row shuffle of an m-register transpose uses m of them."""
        m = 8
        hw = SimdMachine(32)
        sw = SmemSimdMachine(32)
        regs = [np.arange(32, dtype=np.int64) for _ in range(m)]
        register_c2r(hw, [r.copy() for r in regs])
        register_c2r(sw, [r.copy() for r in regs])
        assert sw.counts.smem_store == hw.counts.shfl == m
        assert sw.counts.barrier == m
        # select/alu costs identical on both machines
        assert sw.counts.select == hw.counts.select

    def test_r2c_roundtrip(self):
        mach = SmemSimdMachine(16)
        A = np.arange(5 * 16, dtype=np.int64).reshape(5, 16)
        back = np.stack(
            register_r2c(mach, register_c2r(mach, [A[i].copy() for i in range(5)]))
        )
        np.testing.assert_array_equal(back, A)
