"""Tests for the statically compiled in-register transposes."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simd import SimdMachine, register_c2r, register_r2c
from repro.simd.compiled import CompiledRegisterTranspose

shapes = st.tuples(st.integers(1, 20), st.integers(1, 33))


class TestCompiledTranspose:
    @given(shapes)
    @settings(max_examples=60)
    def test_c2r_matches_dynamic_path(self, shape):
        m, n_lanes = shape
        A = np.arange(m * n_lanes, dtype=np.int64).reshape(m, n_lanes)
        compiled = CompiledRegisterTranspose(m, n_lanes)
        got = np.stack(
            compiled.c2r(SimdMachine(n_lanes), [A[i].copy() for i in range(m)])
        )
        ref = np.stack(
            register_c2r(SimdMachine(n_lanes), [A[i].copy() for i in range(m)])
        )
        np.testing.assert_array_equal(got, ref)

    @given(shapes)
    @settings(max_examples=60)
    def test_r2c_matches_dynamic_path(self, shape):
        m, n_lanes = shape
        A = np.arange(m * n_lanes, dtype=np.int64).reshape(m, n_lanes)
        compiled = CompiledRegisterTranspose(m, n_lanes)
        got = np.stack(
            compiled.r2c(SimdMachine(n_lanes), [A[i].copy() for i in range(m)])
        )
        ref = np.stack(
            register_r2c(SimdMachine(n_lanes), [A[i].copy() for i in range(m)])
        )
        np.testing.assert_array_equal(got, ref)

    @given(shapes)
    @settings(max_examples=40)
    def test_roundtrip(self, shape):
        m, n_lanes = shape
        A = np.arange(m * n_lanes, dtype=np.int64).reshape(m, n_lanes)
        compiled = CompiledRegisterTranspose(m, n_lanes)
        mach = SimdMachine(n_lanes)
        back = np.stack(
            compiled.r2c(mach, compiled.c2r(mach, [A[i].copy() for i in range(m)]))
        )
        np.testing.assert_array_equal(back, A)

    def test_zero_runtime_index_math(self):
        """Section 6.2.4's point: all index computation folded to compile
        time — only shuffles and selects are issued at runtime."""
        m, n_lanes = 8, 32
        compiled = CompiledRegisterTranspose(m, n_lanes)
        mach = SimdMachine(n_lanes)
        compiled.c2r(mach, [np.zeros(n_lanes, dtype=np.int64) for _ in range(m)])
        assert mach.counts.alu == 0
        assert mach.counts.shfl == m
        assert mach.counts.select == 2 * m * 3  # two rotations, log2(8) stages

    def test_dynamic_path_pays_alu(self):
        m, n_lanes = 8, 32
        mach = SimdMachine(n_lanes)
        register_c2r(mach, [np.zeros(n_lanes, dtype=np.int64) for _ in range(m)])
        assert mach.counts.alu > 0

    def test_compile_once_run_many(self):
        compiled = CompiledRegisterTranspose(4, 16)
        rng = np.random.default_rng(0)
        for _ in range(3):
            A = rng.integers(0, 100, size=(4, 16))
            mach = SimdMachine(16)
            out = np.stack(compiled.c2r(mach, [A[i] for i in range(4)]))
            ref = np.stack(
                register_c2r(SimdMachine(16), [A[i].copy() for i in range(4)])
            )
            np.testing.assert_array_equal(out, ref)

    def test_validates_geometry(self):
        compiled = CompiledRegisterTranspose(4, 16)
        with pytest.raises(ValueError):
            compiled.c2r(SimdMachine(8), [np.zeros(8)] * 4)
        with pytest.raises(ValueError):
            compiled.c2r(SimdMachine(16), [np.zeros(16)] * 3)
        with pytest.raises(ValueError):
            CompiledRegisterTranspose(0, 16)
        with pytest.raises(ValueError):
            CompiledRegisterTranspose(4, 0)
