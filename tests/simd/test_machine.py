"""Tests for the SIMD machine primitives."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.simd import SimdMachine
from repro.simd.memory import SimulatedMemory
from repro.simd.rotate import dynamic_column_rotate
from repro.simd.rowperm import static_row_permute


class TestMachine:
    def test_lane_id(self):
        mach = SimdMachine(8)
        np.testing.assert_array_equal(mach.lane_id(), np.arange(8))

    def test_rejects_zero_lanes(self):
        with pytest.raises(ValueError):
            SimdMachine(0)

    @given(st.integers(1, 64), st.integers(0, 2**32 - 1))
    def test_shfl_semantics(self, n_lanes, seed):
        mach = SimdMachine(n_lanes)
        rng = np.random.default_rng(seed)
        vals = rng.standard_normal(n_lanes)
        src = rng.integers(0, n_lanes, size=n_lanes)
        out = mach.shfl(vals, src)
        np.testing.assert_array_equal(out, vals[src])
        assert mach.counts.shfl == 1

    def test_shfl_validates(self):
        mach = SimdMachine(4)
        with pytest.raises(ValueError):
            mach.shfl(np.zeros(3), np.zeros(4, dtype=np.int64))
        with pytest.raises(ValueError):
            mach.shfl(np.zeros(4), np.array([0, 1, 2, 4]))
        with pytest.raises(ValueError):
            mach.shfl(np.zeros(4), np.array([0, 1, 2, -1]))

    def test_select_semantics(self):
        mach = SimdMachine(4)
        out = mach.select(
            np.array([1, 0, 1, 0]), np.full(4, 10), np.full(4, 20)
        )
        np.testing.assert_array_equal(out, [10, 20, 10, 20])
        assert mach.counts.select == 1

    def test_select_validates(self):
        mach = SimdMachine(4)
        with pytest.raises(ValueError):
            mach.select(np.zeros(3), np.zeros(4), np.zeros(4))

    def test_counts_accumulate_and_reset(self):
        mach = SimdMachine(4)
        mach.alu(np.zeros(4), ops=3)
        mach.select(np.zeros(4), np.zeros(4), np.zeros(4))
        assert mach.counts.total == 4
        mach.reset_counts()
        assert mach.counts.total == 0


class TestDynamicRotate:
    @given(st.integers(1, 24), st.integers(1, 40), st.integers(0, 2**32 - 1))
    def test_per_lane_rotation(self, m, n_lanes, seed):
        mach = SimdMachine(n_lanes)
        rng = np.random.default_rng(seed)
        A = rng.integers(0, 1000, size=(m, n_lanes))
        amounts = rng.integers(0, 3 * m, size=n_lanes)
        out = dynamic_column_rotate(mach, [A[i] for i in range(m)], amounts)
        got = np.stack(out)
        for j in range(n_lanes):
            for i in range(m):
                assert got[i, j] == A[(i + amounts[j]) % m, j]

    @given(st.integers(2, 32))
    def test_select_count_is_m_log_m(self, m):
        """Exactly m * ceil(log2 m) selects per rotation (Section 6.2.2)."""
        mach = SimdMachine(8)
        regs = [np.zeros(8) for _ in range(m)]
        dynamic_column_rotate(mach, regs, np.arange(8) % m)
        assert mach.counts.select == m * int(np.ceil(np.log2(m)))

    def test_m1_is_free_of_selects(self):
        mach = SimdMachine(4)
        out = dynamic_column_rotate(mach, [np.arange(4)], np.arange(4))
        assert mach.counts.select == 0
        np.testing.assert_array_equal(out[0], np.arange(4))

    def test_validates(self):
        mach = SimdMachine(4)
        with pytest.raises(ValueError):
            dynamic_column_rotate(mach, [], np.zeros(4))
        with pytest.raises(ValueError):
            dynamic_column_rotate(mach, [np.zeros(4)], np.zeros(3))


class TestStaticRowPermute:
    @given(st.integers(1, 24), st.integers(0, 2**32 - 1))
    def test_renaming(self, m, seed):
        rng = np.random.default_rng(seed)
        regs = [rng.standard_normal(4) for _ in range(m)]
        g = rng.permutation(m)
        out = static_row_permute(regs, g)
        for i in range(m):
            assert out[i] is regs[g[i]]

    def test_zero_cost(self):
        # no machine involved at all: renaming is compile-time
        regs = [np.arange(4), np.arange(4) + 10]
        static_row_permute(regs, np.array([1, 0]))

    def test_validates_permutation(self):
        with pytest.raises(ValueError):
            static_row_permute([np.zeros(2)] * 3, np.array([0, 0, 1]))
        with pytest.raises(ValueError):
            static_row_permute([np.zeros(2)] * 3, np.array([0, 1]))


class TestSimulatedMemory:
    def test_load_store_roundtrip(self):
        mem = SimulatedMemory(64, itemsize=4)
        mem.store(np.arange(8), np.arange(8) * 10)
        np.testing.assert_array_equal(mem.load(np.arange(8)), np.arange(8) * 10)
        assert len(mem.trace) == 2
        assert mem.trace[0].kind == "store"
        np.testing.assert_array_equal(
            mem.trace[0].byte_addresses, np.arange(8) * 4
        )

    def test_bounds_checked(self):
        mem = SimulatedMemory(8)
        with pytest.raises(IndexError):
            mem.load(np.array([8]))
        with pytest.raises(IndexError):
            mem.store(np.array([-1]), np.array([0]))

    def test_unrecorded_access(self):
        mem = SimulatedMemory(8)
        mem.load(np.array([0]), record=False)
        assert mem.trace == []

    def test_validates_args(self):
        with pytest.raises(ValueError):
            SimulatedMemory(0)
        mem = SimulatedMemory(8)
        with pytest.raises(ValueError):
            mem.store(np.array([0, 1]), np.array([0]))
