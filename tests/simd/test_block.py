"""Tests for the thread block and the §4.5 on-chip row shuffle."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import equations as eq
from repro.core.indexing import Decomposition
from repro.gpusim import TransactionAnalyzer
from repro.simd.block import ThreadBlock, onchip_row_shuffle, twopass_row_shuffle
from repro.simd.memory import SimulatedMemory

shapes = st.tuples(st.integers(2, 12), st.integers(2, 200))


def _setup(m, n, dtype=np.float64):
    mem = SimulatedMemory(m * n, itemsize=8, dtype=dtype)
    mem.data[:] = np.arange(m * n)
    return mem, Decomposition.of(m, n)


def _expected_row(mem_before: np.ndarray, row: int, dec: Decomposition):
    cols = np.arange(dec.n, dtype=np.int64)
    src = eq.dprime_inverse_v(dec, np.int64(row), cols)
    return mem_before[row * dec.n + src]


class TestOnChipRowShuffle:
    @given(shapes, st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_single_pass_is_correct(self, mn, n_warps):
        m, n = mn
        mem, dec = _setup(m, n)
        before = mem.data.copy()
        row = m // 2
        block = ThreadBlock(n_warps=n_warps, capacity_words=max(n, 64))
        onchip_row_shuffle(mem, row, dec, block)
        np.testing.assert_array_equal(
            mem.data[row * n : (row + 1) * n], _expected_row(before, row, dec)
        )
        # other rows untouched
        np.testing.assert_array_equal(mem.data[: row * n], before[: row * n])

    @given(shapes)
    @settings(max_examples=30, deadline=None)
    def test_two_pass_matches_single_pass(self, mn):
        m, n = mn
        row = 1 % m
        mem1, dec = _setup(m, n)
        block1 = ThreadBlock(capacity_words=max(n, 64))
        onchip_row_shuffle(mem1, row, dec, block1)
        mem2, _ = _setup(m, n)
        scratch = SimulatedMemory(n, itemsize=8)
        block2 = ThreadBlock(capacity_words=max(n, 64))
        twopass_row_shuffle(mem2, scratch, row, dec, block2)
        np.testing.assert_array_equal(mem1.data, mem2.data)

    def test_capacity_enforced(self):
        mem, dec = _setup(4, 100)
        block = ThreadBlock(capacity_words=64)
        with pytest.raises(ValueError, match="on-chip capacity"):
            onchip_row_shuffle(mem, 0, dec, block)

    def test_scratch_size_enforced(self):
        mem, dec = _setup(4, 100)
        with pytest.raises(ValueError, match="scratch"):
            twopass_row_shuffle(
                mem, SimulatedMemory(10, itemsize=8), 0, dec,
                ThreadBlock(capacity_words=128),
            )

    def test_block_validates(self):
        with pytest.raises(ValueError):
            ThreadBlock(n_warps=0)


class TestTrafficComparison:
    def test_single_pass_halves_global_traffic(self):
        """The point of §4.5: 2 vs 4 global accesses per element."""
        m, n = 8, 512
        row = 3
        mem1, dec = _setup(m, n)
        mem1.clear_trace()
        onchip_row_shuffle(mem1, row, dec, ThreadBlock(capacity_words=n))
        one_pass = len(mem1.trace)

        mem2, _ = _setup(m, n)
        scratch = SimulatedMemory(n, itemsize=8)
        mem2.clear_trace()
        scratch.clear_trace()
        twopass_row_shuffle(mem2, scratch, row, dec, ThreadBlock(capacity_words=n))
        two_pass = len(mem2.trace) + len(scratch.trace)
        assert two_pass == 2 * one_pass

    def test_single_pass_global_accesses_fully_coalesced(self):
        m, n = 6, 256
        mem, dec = _setup(m, n)
        mem.clear_trace()
        onchip_row_shuffle(mem, 2, dec, ThreadBlock(capacity_words=n))
        an = TransactionAnalyzer(128)
        for rec in mem.trace:
            assert an.warp_efficiency(rec.byte_addresses, rec.access_bytes) == 1.0

    def test_two_pass_gather_reads_are_scattered(self):
        m, n = 9, 256  # coprime-ish: d'inv scatters
        mem, dec = _setup(m, n)
        scratch = SimulatedMemory(n, itemsize=8)
        mem.clear_trace()
        twopass_row_shuffle(mem, scratch, 2, dec, ThreadBlock(capacity_words=n))
        an = TransactionAnalyzer(32)
        gather_effs = [
            an.warp_efficiency(rec.byte_addresses, rec.access_bytes)
            for rec in mem.trace
            if rec.kind == "load"
        ]
        assert min(gather_effs) < 0.8  # at least some scattered reads

    def test_smem_gather_conflicts_accounted(self):
        m, n = 8, 512
        mem, dec = _setup(m, n)
        block = ThreadBlock(capacity_words=n)
        stats = onchip_row_shuffle(mem, 0, dec, block)
        assert stats.smem_cycles >= stats.global_loads  # at least 1 cyc/access
        assert stats.barriers == 2
