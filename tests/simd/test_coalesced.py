"""Tests for the coalesced_ptr-style AoS accessor."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simd import CoalescedArray, SimdMachine, SimulatedMemory

struct_sizes = st.integers(1, 32)


def make_array(m: int, n_structs: int = 128) -> CoalescedArray:
    mem = SimulatedMemory(n_structs * m, itemsize=4)
    mem.data[:] = np.arange(n_structs * m)
    return CoalescedArray(mem, m, SimdMachine(32))


class TestUnitStride:
    @given(struct_sizes, st.integers(0, 3))
    @settings(max_examples=60)
    def test_load_delivers_structs_to_lanes(self, m, base_warp):
        arr = make_array(m)
        base = base_warp * 32
        regs = arr.warp_load(base)
        for k in range(m):
            np.testing.assert_array_equal(
                regs[k], (np.arange(32) + base) * m + k
            )

    @given(struct_sizes)
    @settings(max_examples=40)
    def test_store_roundtrip(self, m):
        arr = make_array(m)
        regs = arr.warp_load(0)
        arr.warp_store(64, regs)
        np.testing.assert_array_equal(
            arr.memory.data[64 * m : 96 * m], np.arange(32 * m)
        )

    @given(struct_sizes)
    @settings(max_examples=40)
    def test_load_passes_are_fully_coalesced(self, m):
        """Every C2R load pass touches 32 consecutive words."""
        arr = make_array(m)
        arr.memory.clear_trace()
        arr.warp_load(32)
        loads = [t for t in arr.memory.trace if t.kind == "load"]
        assert len(loads) == m
        for rec in loads:
            addrs = np.sort(rec.byte_addresses)
            assert addrs[-1] - addrs[0] == (32 - 1) * 4  # contiguous words

    def test_out_of_range_batch(self):
        arr = make_array(4, n_structs=32)
        with pytest.raises(IndexError):
            arr.warp_load(1)
        with pytest.raises(IndexError):
            arr.warp_load(-1)

    def test_store_validates_register_count(self):
        arr = make_array(4)
        with pytest.raises(ValueError):
            arr.warp_store(0, [np.zeros(32)] * 3)


class TestRandomAccess:
    @given(struct_sizes, st.integers(0, 2**32 - 1))
    @settings(max_examples=60)
    def test_gather_semantics(self, m, seed):
        arr = make_array(m)
        idx = np.random.default_rng(seed).permutation(128)[:32]
        regs = arr.warp_gather(idx)
        for k in range(m):
            np.testing.assert_array_equal(regs[k], idx * m + k)

    @given(struct_sizes, st.integers(0, 2**32 - 1))
    @settings(max_examples=60)
    def test_scatter_inverts_gather(self, m, seed):
        src = make_array(m)
        rng = np.random.default_rng(seed)
        idx = rng.permutation(128)[:32]
        regs = src.warp_gather(idx)
        dst_mem = SimulatedMemory(128 * m, itemsize=4)
        dst = CoalescedArray(dst_mem, m, SimdMachine(32))
        where = rng.permutation(128)[:32]
        dst.warp_scatter(where, regs)
        for l in range(32):
            np.testing.assert_array_equal(
                dst_mem.data[where[l] * m : (where[l] + 1) * m],
                idx[l] * m + np.arange(m),
            )

    @given(struct_sizes, st.integers(0, 2**32 - 1))
    @settings(max_examples=40)
    def test_duplicate_indices_allowed_for_gather(self, m, seed):
        arr = make_array(m)
        idx = np.random.default_rng(seed).integers(0, 128, size=32)
        regs = arr.warp_gather(idx)
        for k in range(m):
            np.testing.assert_array_equal(regs[k], idx * m + k)

    def test_struct_larger_than_warp_rejected(self):
        arr = make_array(33)
        with pytest.raises(ValueError):
            arr.warp_gather(np.arange(32))

    def test_index_validation(self):
        arr = make_array(4)
        with pytest.raises(ValueError):
            arr.warp_gather(np.arange(16))
        with pytest.raises(IndexError):
            arr.warp_gather(np.full(32, 128))

    @given(st.sampled_from([1, 2, 4, 8, 16, 32]))
    def test_gather_reads_whole_structs_contiguously(self, m):
        """Each cooperative round reads contiguous words within structs."""
        arr = make_array(m)
        arr.memory.clear_trace()
        idx = np.arange(0, 128, 4)[:32]
        arr.warp_gather(idx)
        for rec in arr.memory.trace:
            if rec.kind != "load":
                continue
            # group addresses by struct: each struct's words contiguous
            words = np.sort(rec.byte_addresses // 4)
            by_struct = {}
            for w in words:
                by_struct.setdefault(w // m, []).append(w % m)
            for fields in by_struct.values():
                assert fields == list(range(len(fields)))


class TestBaselineAccessMethods:
    @given(struct_sizes, st.integers(0, 2**32 - 1))
    @settings(max_examples=40)
    def test_all_methods_agree_on_data(self, m, seed):
        arr = make_array(m)
        idx = np.random.default_rng(seed).permutation(128)[:32]
        g = arr.warp_gather(idx)
        d = arr.direct_load(idx)
        v = arr.vector_load(idx)
        for k in range(m):
            np.testing.assert_array_equal(d[k], g[k])
            np.testing.assert_array_equal(v[k], g[k])

    @given(struct_sizes)
    @settings(max_examples=30)
    def test_direct_and_vector_stores_agree(self, m):
        idx = np.arange(32) * 2  # strided targets
        regs = [np.full(32, k, dtype=np.int64) for k in range(m)]
        a = CoalescedArray(SimulatedMemory(128 * m, itemsize=4), m, SimdMachine(32))
        b = CoalescedArray(SimulatedMemory(128 * m, itemsize=4), m, SimdMachine(32))
        a.direct_store(idx, regs)
        b.vector_store(idx, regs)
        np.testing.assert_array_equal(a.memory.data, b.memory.data)

    def test_vector_load_trace_has_vector_footprint(self):
        arr = make_array(8)  # 32-byte structs
        arr.memory.clear_trace()
        arr.vector_load(np.arange(32))
        loads = [t for t in arr.memory.trace if t.kind == "load"]
        assert len(loads) == 2  # 32 bytes / 16-byte vectors
        assert all(rec.access_bytes == 16 for rec in loads)

    def test_direct_load_issues_m_strided_passes(self):
        arr = make_array(8)
        arr.memory.clear_trace()
        arr.direct_load(np.arange(32))
        loads = [t for t in arr.memory.trace if t.kind == "load"]
        assert len(loads) == 8
        # stride between lanes is the struct size
        diffs = np.diff(np.sort(loads[0].byte_addresses))
        assert (diffs == 8 * 4).all()


class TestCompiledOption:
    def test_compiled_and_dynamic_agree(self):
        for m in (1, 3, 8, 16):
            mem1 = SimulatedMemory(128 * m, itemsize=4)
            mem1.data[:] = np.arange(128 * m)
            mem2 = SimulatedMemory(128 * m, itemsize=4)
            mem2.data[:] = np.arange(128 * m)
            a = CoalescedArray(mem1, m, SimdMachine(32), compiled=True)
            b = CoalescedArray(mem2, m, SimdMachine(32), compiled=False)
            ra = a.warp_load(16)
            rb = b.warp_load(16)
            for k in range(m):
                np.testing.assert_array_equal(ra[k], rb[k])
            idx = np.arange(32) * 3
            ga = a.warp_gather(idx)
            gb = b.warp_gather(idx)
            for k in range(m):
                np.testing.assert_array_equal(ga[k], gb[k])

    def test_compiled_issues_fewer_alu_instructions(self):
        """Section 6.2.4: index math folded at compile time."""
        m = 8
        mem = SimulatedMemory(128 * m, itemsize=4)
        fast = SimdMachine(32)
        CoalescedArray(mem, m, fast, compiled=True).warp_load(0)
        slow = SimdMachine(32)
        CoalescedArray(
            SimulatedMemory(128 * m, itemsize=4), m, slow, compiled=False
        ).warp_load(0)
        assert fast.counts.alu < slow.counts.alu
        assert fast.counts.shfl == slow.counts.shfl


class TestNarrowMachines:
    """CoalescedArray at CPU-SIMD widths (Section 5's 'on both CPUs and
    GPUs'): the same cooperative access works for 8- and 16-lane units."""

    @pytest.mark.parametrize("n_lanes", [4, 8, 16])
    @pytest.mark.parametrize("m", [1, 2, 3, 4, 8])
    def test_unit_stride_any_width(self, n_lanes, m):
        mem = SimulatedMemory(64 * m, itemsize=4)
        mem.data[:] = np.arange(64 * m)
        arr = CoalescedArray(mem, m, SimdMachine(n_lanes))
        regs = arr.warp_load(n_lanes)
        for k in range(m):
            np.testing.assert_array_equal(
                regs[k], (np.arange(n_lanes) + n_lanes) * m + k
            )

    @pytest.mark.parametrize("n_lanes", [8, 16])
    def test_gather_any_width(self, n_lanes):
        m = 4
        mem = SimulatedMemory(64 * m, itemsize=4)
        mem.data[:] = np.arange(64 * m)
        arr = CoalescedArray(mem, m, SimdMachine(n_lanes))
        idx = np.random.default_rng(0).permutation(64)[:n_lanes]
        regs = arr.warp_gather(idx)
        for k in range(m):
            np.testing.assert_array_equal(regs[k], idx * m + k)

    def test_struct_wider_than_narrow_machine_rejected(self):
        mem = SimulatedMemory(64 * 12, itemsize=4)
        arr = CoalescedArray(mem, 12, SimdMachine(8))
        with pytest.raises(ValueError):
            arr.warp_gather(np.arange(8))
