"""Tests for the banked shared memory and the smem-staged AoS accessor."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simd import CoalescedArray, SimdMachine, SimulatedMemory
from repro.simd.sharedmem import SharedMemory, SmemStagedAccessor


class TestSharedMemory:
    def test_roundtrip(self):
        sm = SharedMemory(64)
        sm.store(np.arange(8), np.arange(8) * 3)
        np.testing.assert_array_equal(sm.load(np.arange(8)), np.arange(8) * 3)

    def test_bounds(self):
        sm = SharedMemory(8)
        with pytest.raises(IndexError):
            sm.load(np.array([8]))
        with pytest.raises(ValueError):
            SharedMemory(0)
        with pytest.raises(ValueError):
            SharedMemory(8, n_banks=0)

    def test_conflict_free_access(self):
        sm = SharedMemory(64, n_banks=32)
        sm.load(np.arange(32))  # one word per bank
        assert sm.stats.cycles == 1
        assert sm.stats.conflict_factor == 1.0

    @given(st.integers(1, 32))
    def test_strided_conflicts_match_gcd(self, stride):
        """A stride-s warp access to 32 banks serializes gcd(s, 32) ways."""
        sm = SharedMemory(32 * 32, n_banks=32)
        sm.load((np.arange(32) * stride) % (32 * 32))
        expected = int(np.gcd(stride, 32))
        assert sm.stats.cycles == expected

    def test_broadcast_counts_as_full_conflict(self):
        """This model charges same-address lanes as a serialized bank (a
        conservative simplification: real hardware broadcasts reads)."""
        sm = SharedMemory(32)
        sm.load(np.zeros(32, dtype=np.int64))
        assert sm.stats.cycles == 32


class TestSmemStagedAccessor:
    def _setup(self, m, n_structs=128):
        mem = SimulatedMemory(n_structs * m, itemsize=4)
        mem.data[:] = np.arange(n_structs * m)
        return SmemStagedAccessor(mem, m, SimdMachine(32))

    @given(st.integers(1, 16))
    @settings(max_examples=30)
    def test_load_semantics_match_register_path(self, m):
        staged = self._setup(m)
        reg_mem = SimulatedMemory(128 * m, itemsize=4)
        reg_mem.data[:] = np.arange(128 * m)
        register = CoalescedArray(reg_mem, m, SimdMachine(32))
        a = staged.warp_load(32)
        b = register.warp_load(32)
        for k in range(m):
            np.testing.assert_array_equal(a[k], b[k])

    @given(st.integers(1, 16))
    @settings(max_examples=30)
    def test_store_roundtrip(self, m):
        staged = self._setup(m)
        regs = staged.warp_load(0)
        staged.warp_store(64, regs)
        np.testing.assert_array_equal(
            staged.memory.data[64 * m : 96 * m], np.arange(32 * m)
        )

    def test_smem_footprint_is_tile_sized(self):
        """The staging path must allocate m * warp words of shared memory —
        the occupancy cost the register path avoids."""
        staged = self._setup(8)
        assert staged.smem_words == 8 * 32

    def test_struct_major_phase_has_bank_conflicts(self):
        """Power-of-two struct sizes produce multi-way conflicts in the
        transpose phase — the classic smem-transpose pathology."""
        staged = self._setup(8)
        staged.warp_load(0)
        assert staged.smem.stats.conflict_factor > 2.0

    def test_odd_struct_sizes_conflict_less(self):
        even = self._setup(8)
        even.warp_load(0)
        odd = self._setup(7)
        odd.warp_load(0)
        assert odd.smem.stats.conflict_factor < even.smem.stats.conflict_factor

    def test_validates(self):
        staged = self._setup(4, n_structs=32)
        with pytest.raises(IndexError):
            staged.warp_load(1)
        with pytest.raises(ValueError):
            staged.warp_store(0, [np.zeros(32)] * 3)
        with pytest.raises(ValueError):
            SmemStagedAccessor(SimulatedMemory(10, itemsize=4), 3)
        with pytest.raises(ValueError):
            SmemStagedAccessor(SimulatedMemory(12, itemsize=4), 0)

    def test_global_traffic_identical_to_register_path(self):
        """Both paths issue the same coalesced global accesses; they differ
        on chip (smem footprint + conflicts vs shuffles + selects)."""
        m = 8
        staged = self._setup(m)
        staged.memory.clear_trace()
        staged.warp_load(0)
        reg_mem = SimulatedMemory(128 * m, itemsize=4)
        register = CoalescedArray(reg_mem, m, SimdMachine(32))
        reg_mem.clear_trace()
        register.warp_load(0)
        a = [(r.kind, r.byte_addresses.tolist()) for r in staged.memory.trace]
        b = [(r.kind, r.byte_addresses.tolist()) for r in reg_mem.trace]
        assert a == b
