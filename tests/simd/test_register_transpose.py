"""The in-register transpose must equal the array kernels exactly."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import c2r_transpose, r2c_transpose
from repro.simd import SimdMachine, register_c2r, register_r2c

shapes = st.tuples(st.integers(1, 24), st.integers(1, 40))


def _regs(A: np.ndarray) -> list[np.ndarray]:
    return [A[i].copy() for i in range(A.shape[0])]


class TestRegisterC2R:
    @given(shapes)
    @settings(max_examples=80)
    def test_matches_array_kernel(self, shape):
        m, n_lanes = shape
        mach = SimdMachine(n_lanes)
        A = np.arange(m * n_lanes, dtype=np.int64).reshape(m, n_lanes)
        out = np.stack(register_c2r(mach, _regs(A)))
        ref = A.ravel().copy()
        c2r_transpose(ref, m, n_lanes)
        np.testing.assert_array_equal(out, ref.reshape(m, n_lanes))

    @given(shapes)
    @settings(max_examples=80)
    def test_r2c_matches_array_kernel(self, shape):
        m, n_lanes = shape
        mach = SimdMachine(n_lanes)
        A = np.arange(m * n_lanes, dtype=np.int64).reshape(m, n_lanes)
        out = np.stack(register_r2c(mach, _regs(A)))
        ref = A.ravel().copy()
        r2c_transpose(ref, m, n_lanes)
        np.testing.assert_array_equal(out, ref.reshape(m, n_lanes))

    @given(shapes)
    @settings(max_examples=60)
    def test_r2c_inverts_c2r(self, shape):
        m, n_lanes = shape
        mach = SimdMachine(n_lanes)
        A = np.arange(m * n_lanes, dtype=np.int64).reshape(m, n_lanes)
        back = np.stack(register_r2c(mach, register_c2r(mach, _regs(A))))
        np.testing.assert_array_equal(back, A)

    def test_warp32_struct8_instruction_budget(self):
        """The canonical CUDA case: 32 lanes, 8 registers.  Shuffle count is
        exactly m; selects are bounded by the two barrel rotations."""
        mach = SimdMachine(32)
        m = 8
        regs = [np.arange(32, dtype=np.int64) for _ in range(m)]
        register_c2r(mach, regs)
        assert mach.counts.shfl == m
        # gcd(8, 32) = 8 > 1: two dynamic rotations of m * ceil(log2 m)
        assert mach.counts.select == 2 * m * 3

    def test_coprime_case_skips_prerotation(self):
        mach = SimdMachine(32)
        m = 9  # gcd(9, 32) = 1
        regs = [np.arange(32, dtype=np.int64) for _ in range(m)]
        register_c2r(mach, regs)
        assert mach.counts.select == m * int(np.ceil(np.log2(m)))  # one rotate

    def test_validates_register_shapes(self):
        mach = SimdMachine(8)
        with pytest.raises(ValueError):
            register_c2r(mach, [])
        with pytest.raises(ValueError):
            register_c2r(mach, [np.zeros(7)])

    def test_aos_load_semantics(self):
        """R2C of the row-major loaded registers hands each lane its struct
        (the Fig. 10 load path)."""
        m, n_lanes = 4, 8
        mach = SimdMachine(n_lanes)
        # coalesced passes: register r, lane l = word r*n + l
        words = np.arange(m * n_lanes, dtype=np.int64)
        regs = [words[r * n_lanes : (r + 1) * n_lanes].copy() for r in range(m)]
        out = register_r2c(mach, regs)
        for lane in range(n_lanes):
            struct = [int(out[k][lane]) for k in range(m)]
            assert struct == list(range(lane * m, (lane + 1) * m))
