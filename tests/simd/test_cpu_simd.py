"""Tests for the CPU-SIMD (wide-machine) instantiation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simd import SimdMachine, register_c2r
from repro.simd.cpu import WideSimdMachine, deinterleave, interleave


class TestWideMachine:
    def test_value_shape(self):
        mach = WideSimdMachine(5, 8)
        assert mach.value_shape == (5, 8)

    def test_rejects_zero_groups(self):
        with pytest.raises(ValueError):
            WideSimdMachine(0, 8)

    def test_shfl_applies_per_group(self):
        mach = WideSimdMachine(3, 4)
        vals = np.arange(12).reshape(3, 4)
        out = mach.shfl(vals, np.array([3, 2, 1, 0]))
        np.testing.assert_array_equal(out, vals[:, ::-1])

    @given(st.integers(1, 12), st.integers(1, 10), st.integers(2, 8))
    @settings(max_examples=40)
    def test_wide_transpose_equals_per_group(self, m, groups, n_lanes):
        """One wide execution == running the narrow machine per group."""
        rng = np.random.default_rng(m * 100 + groups)
        data = rng.integers(0, 1000, size=(groups, m, n_lanes))
        wide = WideSimdMachine(groups, n_lanes)
        wide_out = np.stack(
            register_c2r(wide, [data[:, i, :] for i in range(m)]), axis=1
        )
        for g in range(groups):
            narrow = SimdMachine(n_lanes)
            out = np.stack(
                register_c2r(narrow, [data[g, i, :].copy() for i in range(m)])
            )
            np.testing.assert_array_equal(wide_out[g], out)

    def test_instruction_count_independent_of_groups(self):
        """The point of width: one vector instruction covers all groups."""
        m = 8
        small = WideSimdMachine(2, 8)
        register_c2r(small, [np.zeros((2, 8), dtype=np.int64) for _ in range(m)])
        big = WideSimdMachine(5000, 8)
        register_c2r(big, [np.zeros((5000, 8), dtype=np.int64) for _ in range(m)])
        assert small.counts.total == big.counts.total


class TestDeinterleave:
    @given(st.integers(1, 12), st.integers(1, 20), st.sampled_from([4, 8]))
    @settings(max_examples=50, deadline=None)
    def test_deinterleave_semantics(self, m, groups, n_lanes):
        count = groups * n_lanes
        buf = np.arange(count * m, dtype=np.float32)  # struct i = [i*m, ...)
        soa = deinterleave(buf, m, n_lanes)
        assert soa.shape == (m, count)
        for k in range(m):
            np.testing.assert_array_equal(soa[k], np.arange(count) * m + k)

    @given(st.integers(1, 10), st.integers(1, 12))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip(self, m, groups):
        count = groups * 8
        buf = np.random.default_rng(0).standard_normal(count * m)
        back = interleave(deinterleave(buf, m), 8)
        np.testing.assert_array_equal(back, buf)

    def test_matches_reshape_reference(self):
        m, count = 5, 64
        buf = np.arange(count * m, dtype=np.int64)
        np.testing.assert_array_equal(
            deinterleave(buf, m), buf.reshape(count, m).T
        )

    def test_validates(self):
        with pytest.raises(ValueError):
            deinterleave(np.zeros(10), 3, n_lanes=8)  # 10 % 24 != 0
        with pytest.raises(ValueError):
            deinterleave(np.zeros(24), 0)
        with pytest.raises(ValueError):
            interleave(np.zeros(10))
        with pytest.raises(ValueError):
            interleave(np.zeros((3, 10)), 8)  # 10 % 8 != 0

    def test_avx_like_width_4_doubles(self):
        """The AVX float64 case: 4 lanes."""
        m, count = 3, 32
        buf = np.arange(count * m, dtype=np.float64)
        soa = deinterleave(buf, m, n_lanes=4)
        np.testing.assert_array_equal(soa, buf.reshape(count, m).T)
