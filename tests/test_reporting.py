"""Tests for the terminal reporting helpers."""

from __future__ import annotations

import doctest

import numpy as np

import repro.reporting as reporting
from repro.reporting import ascii_heatmap, ascii_hist, format_table


class TestAsciiHist:
    def test_empty(self):
        assert ascii_hist([]) == "(no samples)"

    def test_median_marked_once(self):
        out = ascii_hist([1, 2, 3, 4, 5, 6], bins=3)
        assert out.count("<-- median") == 1
        assert "median = 3.500" in out

    def test_constant_values(self):
        out = ascii_hist([7.0, 7.0, 7.0], bins=4)
        assert "n = 3" in out

    def test_bar_lengths_proportional(self):
        out = ascii_hist([0, 0, 0, 0, 10], bins=2, width=8)
        lines = out.splitlines()
        assert lines[0].count("#") == 8  # the full bin
        assert lines[1].count("#") == 2  # 1/4 of the peak

    def test_doctest(self):
        assert doctest.testmod(reporting).failed == 0


class TestAsciiHeatmap:
    def test_extremes_use_extreme_shades(self):
        grid = np.array([[0.0, 9.0], [4.5, 9.0]])
        out = ascii_heatmap(grid, [1000, 2000], [1000, 2000])
        assert "@" in out  # max shade
        assert "value range: 0.00 .. 9.00" in out

    def test_row_labels_in_thousands(self):
        out = ascii_heatmap(np.ones((2, 2)), [5000, 25000], [1000, 9000])
        assert "m=  5k" in out
        assert "m= 25k" in out


class TestFormatTable:
    def test_alignment(self):
        out = format_table(["name", "v"], [["a", 1], ["bb", 22]])
        lines = out.splitlines()
        assert lines[0].endswith(" v")
        assert lines[1].startswith("-")
        assert lines[-1].endswith("22")

    def test_empty_rows(self):
        out = format_table(["col"], [])
        assert "col" in out
