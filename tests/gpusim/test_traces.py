"""Direct tests for the trace-measured pass efficiencies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.indexing import Decomposition
from repro.gpusim.device import TESLA_K20C
from repro.gpusim.throughput import eq37_throughput, gbps
from repro.gpusim.traces import (
    CONCURRENT_ROWS_PER_SM,
    L2_RESIDENT_EFFICIENCY,
    cached_row_gather_efficiency,
    fine_rotate_fraction,
    row_gather_efficiency,
    subrow_efficiency,
)


class TestThroughput:
    def test_eq37(self):
        # 2 * m * n * s / t
        assert eq37_throughput(100, 200, 8, 1.0) == 2 * 100 * 200 * 8
        assert gbps(19.5e9) == 19.5

    def test_rejects_nonpositive_time(self):
        with pytest.raises(ValueError):
            eq37_throughput(2, 2, 8, 0.0)


class TestRowGatherEfficiency:
    def test_b_equals_one_rows_gather_contiguously(self):
        """When n divides m (b = 1), d'^{-1} is a rotation: consecutive
        outputs read consecutive inputs -> near-perfect coalescing."""
        dec = Decomposition.of(20000, 2000)
        e = row_gather_efficiency(dec, 8, TESLA_K20C, np.random.default_rng(0))
        assert e > 0.8

    def test_scattered_case_near_sector_floor(self):
        """Generic coprime-ish shapes scatter across the row: efficiency
        approaches itemsize/sector with index-locality bumps."""
        dec = Decomposition.of(12345, 6789)
        e = row_gather_efficiency(dec, 4, TESLA_K20C, np.random.default_rng(0))
        assert 0.1 <= e <= 0.5

    def test_warp_sampling_is_stable(self):
        dec = Decomposition.of(5003, 12007)
        es = [
            row_gather_efficiency(dec, 8, TESLA_K20C, np.random.default_rng(s))
            for s in range(4)
        ]
        assert max(es) - min(es) < 0.25

    def test_cached_tier_threshold(self):
        share = TESLA_K20C.l2_bytes // (TESLA_K20C.n_sm * CONCURRENT_ROWS_PER_SM)
        fits = Decomposition.of(9973, share // 8 - 1)
        rng = np.random.default_rng(1)
        assert (
            cached_row_gather_efficiency(fits, 8, TESLA_K20C, rng)
            == L2_RESIDENT_EFFICIENCY
        )
        too_big = Decomposition.of(9973, 4 * share // 8)
        assert (
            cached_row_gather_efficiency(too_big, 8, TESLA_K20C, rng)
            < L2_RESIDENT_EFFICIENCY
        )


class TestSubrowEfficiency:
    def test_aligned_pitch_is_perfect(self):
        assert subrow_efficiency(64, 1600, 8, TESLA_K20C) == 1.0

    def test_unaligned_pitch_pays_straddles(self):
        e = subrow_efficiency(64, 1601, 8, TESLA_K20C)
        assert 0.5 <= e < 1.0

    def test_smaller_elements_change_width(self):
        e8 = subrow_efficiency(64, 1603, 8, TESLA_K20C)
        e4 = subrow_efficiency(64, 1603, 4, TESLA_K20C)
        assert 0.4 < e4 <= 1.0 and 0.4 < e8 <= 1.0


class TestFineRotateFraction:
    def test_slow_rotation_mostly_skips(self):
        dec = Decomposition.of(4, 25600)  # b = 6400 >> w
        assert fine_rotate_fraction(dec, 8, TESLA_K20C) < 0.01

    def test_fast_rotation_never_skips(self):
        dec = Decomposition.of(25600, 16)  # b = 1
        assert fine_rotate_fraction(dec, 8, TESLA_K20C) == 1.0

    def test_boundary_cases(self):
        # b exactly equals the group width: every group constant
        dec = Decomposition.of(16, 16 * 16)
        assert fine_rotate_fraction(dec, 8, TESLA_K20C) == 0.0

    def test_fraction_in_unit_interval(self):
        for m, n in [(7, 1000), (1000, 7), (360, 480)]:
            f = fine_rotate_fraction(Decomposition.of(m, n), 8, TESLA_K20C)
            assert 0.0 <= f <= 1.0
