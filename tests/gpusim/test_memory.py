"""Tests for the transaction analyzer and device model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gpusim import TESLA_K20C, TransactionAnalyzer
from repro.gpusim.device import CORE_I7_950
from repro.simd.memory import AccessRecord


class TestTransactionAnalyzer:
    def test_fully_coalesced_warp(self):
        """32 lanes x 4 bytes contiguous = one 128-byte transaction."""
        an = TransactionAnalyzer(128)
        addrs = np.arange(32) * 4
        assert an.count_warp(addrs, 4) == 1
        assert an.warp_efficiency(addrs, 4) == 1.0

    def test_fully_scattered_warp(self):
        an = TransactionAnalyzer(128)
        addrs = np.arange(32) * 128
        assert an.count_warp(addrs, 4) == 32
        assert an.warp_efficiency(addrs, 4) == pytest.approx(4 / 128)

    def test_strided_access_matches_formula(self):
        """Stride-s word accesses touch ~32*s*4/128 lines."""
        an = TransactionAnalyzer(128)
        for stride_words in (2, 4, 8, 16, 32):
            addrs = np.arange(32) * stride_words * 4
            expected = max(1, 32 * stride_words * 4 // 128)
            assert an.count_warp(addrs, 4) == expected

    def test_straddling_access(self):
        an = TransactionAnalyzer(128)
        # 16-byte access starting 8 bytes before a boundary: 2 segments
        assert an.count_warp(np.array([120]), 16) == 2
        assert an.count_warp(np.array([112]), 16) == 1

    def test_duplicate_addresses_coalesce(self):
        an = TransactionAnalyzer(128)
        assert an.count_warp(np.zeros(32, dtype=np.int64), 4) == 1

    def test_empty_access(self):
        an = TransactionAnalyzer(128)
        assert an.count_warp(np.array([], dtype=np.int64), 4) == 0

    def test_validates(self):
        with pytest.raises(ValueError):
            TransactionAnalyzer(0)
        with pytest.raises(ValueError):
            TransactionAnalyzer(128).count_warp(np.array([0]), 0)

    @given(st.integers(1, 64), st.integers(0, 2**20), st.integers(1, 16))
    def test_count_brute_force_equivalence(self, n_lanes, base, itemsize):
        """Against a brute-force set-of-segments computation."""
        rng = np.random.default_rng(base)
        addrs = base + rng.integers(0, 4096, size=n_lanes)
        an = TransactionAnalyzer(128)
        got = an.count_warp(addrs, itemsize)
        segs = set()
        for a in addrs.tolist():
            for b in range(a, a + itemsize):
                segs.add(b // 128)
        assert got == len(segs)

    def test_analyze_trace(self):
        an = TransactionAnalyzer(128)
        trace = [
            AccessRecord("load", np.arange(32) * 4, 4),
            AccessRecord("store", np.arange(32) * 128, 4),
        ]
        summary = an.analyze(trace)
        assert summary.load_transactions == 1
        assert summary.store_transactions == 32
        assert summary.transactions == 33
        assert summary.useful_bytes == 2 * 32 * 4
        assert 0 < summary.efficiency < 1

    def test_empty_trace_efficiency(self):
        assert TransactionAnalyzer(128).analyze([]).efficiency == 1.0


class TestDevice:
    def test_k20c_constants(self):
        d = TESLA_K20C
        assert d.warp_size == 32
        assert d.line_bytes == 128
        # the paper's measured streaming plateau: ~180 GB/s
        assert d.achievable_bandwidth == pytest.approx(181e9, rel=0.01)
        # Section 4.5: rows of up to 29440 64-bit elements on chip
        assert d.onchip.max_row_elements(8) == 29440

    def test_instruction_rates_positive(self):
        assert TESLA_K20C.shfl_rate > 0
        assert TESLA_K20C.alu_rate > TESLA_K20C.shfl_rate

    def test_cpu_device_exists(self):
        assert CORE_I7_950.peak_bandwidth > 0
