"""Tests for the occupancy model."""

from __future__ import annotations

import pytest

from repro.gpusim.device import TESLA_K20C
from repro.gpusim.occupancy import (
    bandwidth_fraction,
    occupancy,
    staged_access_bandwidth,
)


class TestOccupancy:
    def test_no_resources_full_occupancy(self):
        # 256-thread blocks, no smem, modest registers: 8 blocks = 64 warps
        assert occupancy(256, 0, regs_per_thread=32) == 1.0

    def test_smem_limits_blocks(self):
        # 24 kB/block -> 2 blocks -> 16 warps of 64
        occ = occupancy(256, 24 * 1024)
        assert occ == pytest.approx(16 / 64)

    def test_register_pressure(self):
        # 255 regs/thread, 256 threads -> 1 block
        occ = occupancy(256, 0, regs_per_thread=255)
        assert occ == pytest.approx(8 / 64)

    def test_block_limit_binds_for_small_blocks(self):
        # 32-thread blocks, max 16 blocks -> 16 warps
        assert occupancy(32, 0) == pytest.approx(16 / 64)

    def test_impossible_configs(self):
        assert occupancy(4096) == 0.0
        assert occupancy(256, 64 * 1024) == 0.0
        assert occupancy(1024, 0, regs_per_thread=255) == 0.0
        with pytest.raises(ValueError):
            occupancy(0)

    def test_bandwidth_saturation_curve(self):
        assert bandwidth_fraction(0.0) == 0.0
        assert bandwidth_fraction(0.25) == pytest.approx(0.5)
        assert bandwidth_fraction(0.5) == 1.0
        assert bandwidth_fraction(1.0) == 1.0
        with pytest.raises(ValueError):
            bandwidth_fraction(1.5)


class TestStagedAccessBandwidth:
    def test_small_structs_keep_full_bandwidth(self):
        bw = staged_access_bandwidth(2, itemsize=4)
        assert bw == pytest.approx(TESLA_K20C.achievable_bandwidth)

    def test_large_structs_lose_bandwidth(self):
        """48-byte+ structs staged for 256-thread blocks exhaust shared
        memory enough to cut occupancy below the saturation point — the
        cost the in-register path avoids."""
        bw16 = staged_access_bandwidth(16, itemsize=4)   # 16 kB/block
        bw32 = staged_access_bandwidth(32, itemsize=4)   # 32 kB/block
        full = TESLA_K20C.achievable_bandwidth
        assert bw32 < bw16 <= full
        assert bw32 < 0.8 * full

    def test_monotone_in_struct_size(self):
        vals = [staged_access_bandwidth(m) for m in (1, 4, 8, 16, 24, 32, 48)]
        assert all(a >= b for a, b in zip(vals, vals[1:]))
