"""Tests for the GPU cost models: the paper's orderings must hold."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpusim.cost import (
    auto_cost,
    c2r_cost,
    r2c_cost,
    skinny_cost,
    sung_cost,
)
from repro.gpusim.device import TESLA_K20C
from repro.gpusim.traces import (
    cached_row_gather_efficiency,
    fine_rotate_fraction,
    row_gather_efficiency,
    subrow_efficiency,
)
from repro.core.indexing import Decomposition


def _median(vals):
    return float(np.median(np.asarray(vals)))


class TestTraceEfficiencies:
    def test_gather_efficiency_in_unit_interval(self):
        rng = np.random.default_rng(0)
        for m, n in [(977, 1009), (4096, 8192), (13, 100000)]:
            dec = Decomposition.of(m, n)
            for s in (4, 8):
                e = row_gather_efficiency(dec, s, TESLA_K20C, rng)
                assert 0.0 < e <= 1.0

    def test_doubles_gather_more_efficiently_than_floats(self):
        """Section 5.2: 64-bit rows transpose faster because the
        unstructured row-shuffle reads are more efficient."""
        wins = 0
        trials = 0
        for m, n in [(977, 14009), (5003, 12007), (9001, 17011), (3001, 19013)]:
            dec = Decomposition.of(m, n)
            e8 = row_gather_efficiency(dec, 8, TESLA_K20C, np.random.default_rng(9))
            e4 = row_gather_efficiency(dec, 4, TESLA_K20C, np.random.default_rng(9))
            trials += 1
            wins += e8 > e4
        assert wins == trials

    def test_short_rows_are_cache_resident(self):
        rng = np.random.default_rng(2)
        short = Decomposition.of(20000, 1200)
        longr = Decomposition.of(20000, 19001)
        e_short = cached_row_gather_efficiency(short, 8, TESLA_K20C, rng)
        e_long = cached_row_gather_efficiency(longr, 8, TESLA_K20C, rng)
        assert e_short > e_long

    def test_subrow_efficiency_perfect_when_aligned(self):
        # 16 doubles per 128-byte line: n multiple of 16 -> aligned
        assert subrow_efficiency(100, 1600, 8, TESLA_K20C) == 1.0
        assert subrow_efficiency(100, 1601, 8, TESLA_K20C) < 1.0

    def test_fine_rotate_fraction_bounds_and_skip(self):
        # b large vs group width -> most groups skip the fine pass
        dec = Decomposition.of(4, 25600)  # c=4, b=6400 >> w=16
        f = fine_rotate_fraction(dec, 8, TESLA_K20C)
        assert f < 0.01
        # b=1 -> rotation changes every column -> every group processed
        dec = Decomposition.of(25600, 16)
        assert fine_rotate_fraction(dec, 8, TESLA_K20C) == 1.0


class TestTransposeCosts:
    def test_pass_structure_reflects_gcd(self):
        coprime = c2r_cost(4999, 5003, 8)
        names = [p.name for p in coprime.passes]
        assert not any("pre-rotate" in nm for nm in names)
        shared = c2r_cost(5000, 5004, 8)
        assert any("pre-rotate" in p.name for p in shared.passes)

    def test_throughput_positive_and_below_streaming(self):
        c = c2r_cost(10000, 12000, 8)
        assert 0 < c.throughput < TESLA_K20C.achievable_bandwidth

    def test_table2_orderings(self):
        """C2R(double) > C2R(float) > Sung(float) in the median — the
        Table 2 ordering."""
        rng = np.random.default_rng(3)
        d, f, s = [], [], []
        for _ in range(40):
            m = int(rng.integers(1000, 20000))
            n = int(rng.integers(1000, 20000))
            d.append(c2r_cost(m, n, 8).throughput_gbps)
            f.append(c2r_cost(m, n, 4).throughput_gbps)
            s.append(sung_cost(m, n, 4)[0].throughput_gbps)
        assert _median(d) > _median(f) > _median(s)
        # rough factors: double/float ~1.3, float/sung ~2.5 in the paper
        assert 1.05 < _median(d) / _median(f) < 2.0
        assert _median(f) / _median(s) > 1.5

    def test_fig4_band_small_n_is_faster(self):
        slow = c2r_cost(20001, 15013, 8).throughput_gbps
        fast = c2r_cost(20001, 1501, 8).throughput_gbps
        assert fast > slow * 1.1

    def test_fig5_band_small_m_is_faster(self):
        slow = r2c_cost(15013, 20001, 8).throughput_gbps
        fast = r2c_cost(1501, 20001, 8).throughput_gbps
        assert fast > slow * 1.1

    def test_r2c_mirrors_c2r(self):
        a = c2r_cost(1501, 20001, 8).throughput_gbps
        b = r2c_cost(20001, 1501, 8).throughput_gbps
        assert a == pytest.approx(b, rel=0.05)

    def test_heuristic_picks_the_faster_side(self):
        m, n = 20001, 1501
        assert auto_cost(m, n, 8).throughput_gbps == pytest.approx(
            c2r_cost(m, n, 8).throughput_gbps
        )
        assert auto_cost(n, m, 8).throughput_gbps == pytest.approx(
            r2c_cost(n, m, 8).throughput_gbps
        )


class TestSkinnyCost:
    def test_beats_general_transpose(self):
        """Fig. 7: the skinny specialization outruns the general kernel."""
        rng = np.random.default_rng(4)
        skinny, general = [], []
        for _ in range(30):
            S = int(rng.integers(2, 32))
            N = int(rng.integers(10**4, 10**6))
            skinny.append(skinny_cost(N, S, 8).throughput_gbps)
            general.append(auto_cost(N, S, 8).throughput_gbps)
        assert _median(skinny) > _median(general)

    def test_magnitudes_near_paper(self):
        """Median in the 30-50 GB/s class, max in the ~50-60 class
        (paper: 34.3 median, 51 max)."""
        rng = np.random.default_rng(5)
        vals = []
        for _ in range(120):
            S = int(rng.integers(2, 32))
            N = int(rng.integers(10**4, 10**7))
            vals.append(skinny_cost(N, S, 8).throughput_gbps)
        med = _median(vals)
        assert 25 < med < 55
        assert max(vals) < 70

    def test_coprime_skips_rotation(self):
        c = skinny_cost(10**5, 7, 8)  # gcd(7, 10**5) = 1
        assert not any("rotate (on-chip)" in p.name for p in c.passes)
        c = skinny_cost(10**5, 8, 8)
        assert any("rotate (on-chip)" in p.name for p in c.passes)


class TestSungCost:
    def test_best_case_calibration(self):
        """The author-reported best case (~20.8 GB/s on 7200 x 1800)."""
        cost, plan = sung_cost(7200, 1800, 4)
        assert plan.tile_rows == 32 and plan.tile_cols == 72
        assert 17 < cost.throughput_gbps < 25

    def test_degenerate_tiles_are_slow(self):
        good, _ = sung_cost(7200, 1800, 4)
        bad, plan = sung_cost(10007, 10009, 4)  # prime dims -> 1x1 tiles
        assert plan.degenerate
        assert bad.throughput_gbps < good.throughput_gbps / 5

    def test_sung_median_well_below_c2r_float(self):
        rng = np.random.default_rng(6)
        c2r, sung = [], []
        for _ in range(40):
            m = int(rng.integers(1000, 20000))
            n = int(rng.integers(1000, 20000))
            c2r.append(c2r_cost(m, n, 4).throughput_gbps)
            cost, plan = sung_cost(m, n, 4)
            if not plan.degenerate:
                sung.append(cost.throughput_gbps)
        assert _median(c2r) > 1.5 * _median(sung)
