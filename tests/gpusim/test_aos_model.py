"""Tests for the Fig. 8/9 AoS access model."""

from __future__ import annotations

import pytest

from repro.gpusim.aos_model import OPS, PATTERNS, aos_access_throughput
from repro.gpusim.device import TESLA_K20C


class TestModelBasics:
    def test_rejects_unknown_inputs(self):
        with pytest.raises(ValueError):
            aos_access_throughput(4, "psychic", "load")
        with pytest.raises(ValueError):
            aos_access_throughput(4, "c2r", "teleport")

    @pytest.mark.parametrize("pattern", PATTERNS)
    @pytest.mark.parametrize("op", OPS)
    def test_every_combination_runs(self, pattern, op):
        res = aos_access_throughput(4, pattern, op, n_warps=2)
        assert res.throughput > 0
        assert res.seconds > 0
        assert res.struct_bytes == 16

    def test_deterministic_given_seed(self):
        a = aos_access_throughput(8, "c2r", "gather", seed=3)
        b = aos_access_throughput(8, "c2r", "gather", seed=3)
        assert a.throughput == b.throughput

    def test_throughput_capped_by_streaming_bandwidth(self):
        for pattern in PATTERNS:
            res = aos_access_throughput(8, pattern, "copy")
            assert res.throughput <= TESLA_K20C.achievable_bandwidth * 1.001

    def test_copy_counts_both_directions(self):
        load = aos_access_throughput(8, "c2r", "load")
        copy = aos_access_throughput(8, "c2r", "copy")
        assert copy.useful_bytes == 2 * load.useful_bytes


class TestFig8Shapes:
    def test_direct_store_decays_with_struct_size(self):
        vals = [
            aos_access_throughput(m, "direct", "store").throughput_gbps
            for m in (2, 4, 8, 16)
        ]
        assert vals == sorted(vals, reverse=True)
        assert vals[0] > 2 * vals[-1]

    def test_c2r_rides_the_plateau(self):
        for m in (1, 4, 8, 16):
            res = aos_access_throughput(m, "c2r", "store")
            assert res.throughput > 0.7 * TESLA_K20C.achievable_bandwidth

    def test_vector_between_c2r_and_direct(self):
        m = 16  # 64-byte structs
        c = aos_access_throughput(m, "c2r", "store").throughput
        v = aos_access_throughput(m, "vector", "store").throughput
        d = aos_access_throughput(m, "direct", "store").throughput
        assert c > v > d

    def test_partial_line_store_pays_rfo(self):
        """Direct stores of sub-line structs cost ~2x their line count
        (ECC read-modify-write): 64-byte structs land near 32x below C2R."""
        c = aos_access_throughput(16, "c2r", "store").throughput
        d = aos_access_throughput(16, "direct", "store").throughput
        assert 25 < c / d < 40


class TestFig9Shapes:
    def test_c2r_gather_rises_with_struct_size(self):
        small = aos_access_throughput(1, "c2r", "gather").throughput
        large = aos_access_throughput(16, "c2r", "gather").throughput
        assert large > 3 * small

    def test_direct_gather_flat(self):
        vals = [
            aos_access_throughput(m, "direct", "gather").throughput_gbps
            for m in (2, 4, 8, 16)
        ]
        assert max(vals) < 3 * min(vals)

    def test_c2r_dominates_random_access(self):
        for m in (4, 8, 16):
            for op in ("gather", "scatter"):
                c = aos_access_throughput(m, "c2r", op).throughput
                d = aos_access_throughput(m, "direct", op).throughput
                assert c >= d

    def test_single_word_structs_equalize(self):
        """At one word per struct there is nothing to transpose: C2R and
        direct degenerate to the same access."""
        c = aos_access_throughput(1, "c2r", "gather").throughput
        d = aos_access_throughput(1, "direct", "gather").throughput
        assert c == pytest.approx(d, rel=0.05)

    def test_nondividing_struct_sizes_run_correctly(self):
        """m that does not divide the warp takes the generic redistribution
        path — slower in instructions but still ahead of direct."""
        res = aos_access_throughput(7, "c2r", "gather")
        assert res.instr_seconds > 0
        d = aos_access_throughput(7, "direct", "gather")
        assert res.throughput > 0.5 * d.throughput  # never catastrophically worse
