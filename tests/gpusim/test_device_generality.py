"""Model-generality checks: the paper's qualitative results are device
properties of *bandwidth-bound transposition*, not K20c artifacts.

Re-run the key orderings on a modern device model (A100): who wins, where
the bands sit, and how the Fig. 8/9 shapes look must persist; only absolute
GB/s scale with the device's bandwidth.
"""

from __future__ import annotations

import numpy as np

from repro.gpusim.aos_model import aos_access_throughput
from repro.gpusim.cost import c2r_cost, skinny_cost, sung_cost
from repro.gpusim.device import A100_SXM4, TESLA_K20C


class TestDeviceGenerality:
    def test_throughput_scales_with_bandwidth(self):
        k20 = c2r_cost(9001, 9002, 8, TESLA_K20C).throughput
        a100 = c2r_cost(9001, 9002, 8, A100_SXM4).throughput
        scale = A100_SXM4.achievable_bandwidth / TESLA_K20C.achievable_bandwidth
        # same pass structure; the gather-efficiency tiers differ slightly
        # (A100's bigger L2 widens the cached band), so allow slack
        assert 0.5 * scale < a100 / k20 < 2.0 * scale

    def test_double_beats_float_in_the_uncached_regime(self):
        """The paper's double > float gap comes from sector-granularity
        gathers on rows too long to stay cache-resident.  On the K20c that
        is most of the benchmark range; on the A100 (40 MB L2) the same gap
        reappears only beyond its much wider cached band — same physics,
        shifted threshold."""
        rng = np.random.default_rng(8)
        for device, lo, hi in (
            (TESLA_K20C, 5000, 20000),
            (A100_SXM4, 30000, 60000),
        ):
            d, f = [], []
            for _ in range(15):
                m = int(rng.integers(lo, hi))
                n = int(rng.integers(lo, hi))
                d.append(c2r_cost(m, n, 8, device).throughput)
                f.append(c2r_cost(m, n, 4, device).throughput)
            assert np.median(d) > np.median(f), device.name

    def test_a100_l2_erases_the_float_penalty_in_band(self):
        """Inside the A100's cached band float and double converge —
        the model predicts the gap is a capacity effect, not intrinsic."""
        d = c2r_cost(8001, 9002, 8, A100_SXM4).throughput
        f = c2r_cost(8001, 9002, 4, A100_SXM4).throughput
        assert abs(d - f) / d < 0.25

    def test_c2r_beats_sung_on_both_devices(self):
        rng = np.random.default_rng(9)
        for device in (TESLA_K20C, A100_SXM4):
            c2r, sung = [], []
            for _ in range(15):
                m = int(rng.integers(1000, 20000))
                n = int(rng.integers(1000, 20000))
                c2r.append(c2r_cost(m, n, 4, device).throughput)
                cost, plan = sung_cost(m, n, 4, device)
                if not plan.degenerate:
                    sung.append(cost.throughput)
            assert np.median(c2r) > np.median(sung), device.name

    def test_band_structure_persists(self):
        """Small-n rows stay cache-resident on the A100 too (its larger L2
        widens the band rather than removing it)."""
        fast = c2r_cost(20001, 1501, 8, A100_SXM4).throughput
        slow = c2r_cost(20001, 19013, 8, A100_SXM4).throughput
        assert fast > slow

    def test_fig8_orderings_persist(self):
        for m in (4, 8, 16):
            c = aos_access_throughput(m, "c2r", "store", A100_SXM4).throughput
            v = aos_access_throughput(m, "vector", "store", A100_SXM4).throughput
            d = aos_access_throughput(m, "direct", "store", A100_SXM4).throughput
            assert c >= v >= d
        assert (
            aos_access_throughput(16, "c2r", "store", A100_SXM4).throughput
            > 10 * aos_access_throughput(16, "direct", "store", A100_SXM4).throughput
        )

    def test_skinny_specialization_wins_on_both(self):
        for device in (TESLA_K20C, A100_SXM4):
            s = skinny_cost(10**6, 8, 8, device).throughput
            assert s > 0.1 * device.achievable_bandwidth, device.name
