"""Tests for the executed GPU kernel — and model-vs-execution agreement."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import c2r_transpose
from repro.gpusim.cost import c2r_cost
from repro.gpusim.kernel import execute_c2r_kernel

shapes = st.tuples(st.integers(1, 40), st.integers(1, 40))


class TestExecutedKernel:
    @given(shapes)
    @settings(max_examples=40, deadline=None)
    def test_produces_the_c2r_permutation(self, mn):
        m, n = mn
        A = np.arange(m * n, dtype=np.float64).reshape(m, n)
        result = execute_c2r_kernel(A)
        ref = A.ravel().copy()
        c2r_transpose(ref, m, n)
        np.testing.assert_array_equal(result.buffer, ref)

    @given(shapes)
    @settings(max_examples=20, deadline=None)
    def test_transposes(self, mn):
        m, n = mn
        A = np.arange(m * n, dtype=np.float64).reshape(m, n)
        result = execute_c2r_kernel(A)
        np.testing.assert_array_equal(result.buffer.reshape(n, m), A.T)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            execute_c2r_kernel(np.zeros(6))

    def test_trace_is_nonempty_and_priced(self):
        A = np.arange(16 * 24, dtype=np.float64).reshape(16, 24)
        result = execute_c2r_kernel(A)
        assert len(result.memory.trace) > 0
        assert result.dram_bytes() > 2 * A.nbytes  # more than one r+w pass

    @pytest.mark.parametrize(
        "m,n",
        [(64, 96), (96, 64), (60, 60), (59, 64), (64, 59), (77, 91)],
    )
    def test_model_predicts_executed_traffic(self, m, n):
        """The cost model's DRAM bytes must agree with the executed trace
        within a factor of 2 (small-matrix edge effects; the model's
        gather efficiency is sampled while the kernel's is exact)."""
        A = np.arange(m * n, dtype=np.float64).reshape(m, n)
        executed = execute_c2r_kernel(A).dram_bytes()
        modeled = c2r_cost(m, n, 8).dram_bytes
        ratio = executed / modeled
        assert 0.5 < ratio < 2.0, (m, n, executed, modeled)

    def test_coprime_skips_prerotation_traffic(self):
        A = np.arange(61 * 64, dtype=np.float64).reshape(61, 64)  # gcd 1
        B = np.arange(60 * 64, dtype=np.float64).reshape(60, 64)  # gcd 4
        coprime = execute_c2r_kernel(A).dram_bytes() / A.nbytes
        shared = execute_c2r_kernel(B).dram_bytes() / B.nbytes
        assert coprime < shared

    def test_float32_kernel(self):
        A = np.arange(24 * 36, dtype=np.float32).reshape(24, 36)
        result = execute_c2r_kernel(A)
        np.testing.assert_array_equal(result.buffer.reshape(36, 24), A.T)


class TestExecutedR2CKernel:
    @given(shapes)
    @settings(max_examples=20, deadline=None)
    def test_matches_r2c_array_kernel(self, mn):
        from repro.core import r2c_transpose
        from repro.gpusim.kernel import execute_r2c_kernel

        m, n = mn
        A = np.arange(m * n, dtype=np.float64).reshape(m, n)
        result = execute_r2c_kernel(A)
        ref = A.ravel().copy()
        r2c_transpose(ref, m, n)
        np.testing.assert_array_equal(result.buffer, ref)

    def test_rejects_non_2d(self):
        from repro.gpusim.kernel import execute_r2c_kernel

        with pytest.raises(ValueError):
            execute_r2c_kernel(np.zeros(6))
