"""Tests for the executed skinny AoS -> SoA kernel (Fig. 7 validation)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aos import aos_to_soa_flat
from repro.gpusim.cost import skinny_cost
from repro.gpusim.kernel import execute_skinny_kernel

shapes = st.tuples(st.integers(1, 20), st.integers(1, 12)).map(
    lambda t: (t[0] * 16, t[1])
)  # (n_structs, struct_size)


class TestExecutedSkinnyKernel:
    @given(shapes)
    @settings(max_examples=30, deadline=None)
    def test_produces_the_soa_layout(self, shape):
        N, S = shape
        A = np.arange(N * S, dtype=np.float64).reshape(N, S)
        result = execute_skinny_kernel(A)
        ref = aos_to_soa_flat(A.ravel().copy(), N, S)
        np.testing.assert_array_equal(result.buffer, ref.ravel())

    def test_each_lane_owns_a_field_row(self):
        N, S = 96, 5
        A = np.arange(N * S, dtype=np.float64).reshape(N, S)
        soa = execute_skinny_kernel(A).buffer.reshape(S, N)
        for k in range(S):
            np.testing.assert_array_equal(soa[k], np.arange(N) * S + k)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            execute_skinny_kernel(np.zeros(8))

    @pytest.mark.parametrize("N,S", [(4096, 8), (4000, 7), (2048, 16), (3968, 31)])
    def test_model_predicts_executed_traffic(self, N, S):
        """The Fig. 7 cost model agrees with the executed kernel's traffic
        within 2x (the model's gather efficiency is sampled)."""
        A = np.arange(N * S, dtype=np.float64).reshape(N, S)
        executed = execute_skinny_kernel(A).dram_bytes()
        modeled = skinny_cost(N, S, 8).dram_bytes
        ratio = executed / modeled
        assert 0.5 < ratio < 2.0, (N, S, executed, modeled)

    def test_coprime_struct_skips_postrotation(self):
        """gcd(S, N) == 1 saves a 2X vertical pass."""
        N = 1024
        a = execute_skinny_kernel(
            np.zeros((N, 7))  # gcd(7, 1024) = 1
        ).dram_bytes() / (N * 7 * 8)
        b = execute_skinny_kernel(
            np.zeros((N, 8))  # gcd(8, 1024) = 8
        ).dram_bytes() / (N * 8 * 8)
        assert a < b
