"""Tests for the instrumented runtime: plan cache and metrics registry."""
