"""Metrics registry: counters, timer statistics, snapshots, instrumentation
wiring of the public entry points, and the ``repro stats`` CLI command."""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.cli import main
from repro.core.batched import batched_transpose_inplace
from repro.core.steps import WorkCounter
from repro.core.transpose import transpose_inplace
from repro.parallel import parallel_transpose_inplace
from repro.runtime import metrics
from repro.runtime.metrics import (
    HISTOGRAM_BOUNDS,
    HistogramStat,
    MetricsRegistry,
    TimerStat,
)


@pytest.fixture(autouse=True)
def _clean_registry():
    was_enabled = metrics.registry.enabled
    metrics.reset()
    metrics.enable()
    yield
    metrics.reset()
    metrics.registry.enabled = was_enabled


class TestTimerStat:
    def test_streaming_summary(self):
        stat = TimerStat()
        for s in (0.2, 0.1, 0.4):
            stat.observe(s)
        d = stat.as_dict()
        assert d["count"] == 3
        assert d["total_s"] == pytest.approx(0.7)
        assert d["mean_s"] == pytest.approx(0.7 / 3)
        assert d["min_s"] == pytest.approx(0.1)
        assert d["max_s"] == pytest.approx(0.4)

    def test_empty_stat_serializes_to_zeros(self):
        d = TimerStat().as_dict()
        assert d == {"count": 0, "total_s": 0.0, "mean_s": 0.0, "min_s": 0.0, "max_s": 0.0}


class TestHistogramStat:
    def test_bounds_are_log_spaced_three_per_decade(self):
        assert len(HISTOGRAM_BOUNDS) == 25
        assert HISTOGRAM_BOUNDS[0] == pytest.approx(1e-7)
        assert HISTOGRAM_BOUNDS[-1] == pytest.approx(1e1)
        for lo, hi in zip(HISTOGRAM_BOUNDS, HISTOGRAM_BOUNDS[3:]):
            assert hi / lo == pytest.approx(10.0)

    def test_observations_land_in_le_buckets(self):
        h = HistogramStat()
        h.observe(5e-8)   # below the first bound -> bucket 0
        h.observe(1e-7)   # exactly on a bound -> that bound's bucket (le)
        h.observe(3e-4)
        h.observe(100.0)  # beyond the last bound -> overflow bucket
        d = h.as_dict()
        assert d["count"] == 4
        assert d["sum_s"] == pytest.approx(5e-8 + 1e-7 + 3e-4 + 100.0)
        assert len(d["counts"]) == len(d["bounds"]) + 1
        assert d["counts"][0] == 2
        assert d["counts"][-1] == 1
        idx = next(
            i for i, b in enumerate(HISTOGRAM_BOUNDS) if 3e-4 <= b
        )
        assert d["counts"][idx] == 1

    def test_total_count_equals_sum_of_buckets(self):
        h = HistogramStat()
        for i in range(200):
            h.observe(10.0 ** ((i % 30) - 22))
        d = h.as_dict()
        assert sum(d["counts"]) == d["count"] == 200


class TestRegistry:
    def test_counters_accumulate(self):
        reg = MetricsRegistry()
        reg.inc("x")
        reg.inc("x", 4)
        assert reg.snapshot()["counters"]["x"] == 5

    def test_timer_context_manager_respects_enabled_flag(self):
        reg = MetricsRegistry(enabled=False)
        with reg.timer("t"):
            pass
        assert reg.snapshot()["timers"] == {}
        reg.enabled = True
        with reg.timer("t"):
            pass
        assert reg.snapshot()["timers"]["t"]["count"] == 1

    def test_record_call_tracks_traffic(self):
        reg = MetricsRegistry()
        reg.record_call("op", 0.01, nbytes=800, elements=100)
        reg.record_call("op", 0.02, nbytes=800, elements=100)
        snap = reg.snapshot()
        assert snap["counters"]["op.calls"] == 2
        assert snap["counters"]["bytes_moved"] == 1600
        assert snap["counters"]["elements_touched"] == 200
        assert snap["timers"]["op"]["count"] == 2

    def test_snapshot_is_json_serializable(self):
        reg = MetricsRegistry()
        reg.record_call("op", 0.01, nbytes=8)
        parsed = json.loads(reg.to_json())
        assert parsed["counters"]["op.calls"] == 1

    def test_reset_clears_data_not_flag(self):
        reg = MetricsRegistry(enabled=False)
        reg.inc("x")
        reg.reset()
        snap = reg.snapshot()
        assert snap["counters"] == {} and snap["timers"] == {}
        assert reg.enabled is False

    def test_gauges_last_write_wins(self):
        reg = MetricsRegistry()
        reg.set_gauge("serve.queue_depth", 4)
        reg.set_gauge("serve.queue_depth", 2)
        assert reg.snapshot()["gauges"] == {"serve.queue_depth": 2.0}

    def test_observe_value_uses_custom_bounds_on_first_use(self):
        reg = MetricsRegistry()
        reg.observe_value("serve.batch_size", 3, (1, 2, 4, 8))
        # Later calls reuse the family's bounds even if they pass none.
        reg.observe_value("serve.batch_size", 100)
        d = reg.snapshot()["value_histograms"]["serve.batch_size"]
        assert d["bounds"] == [1, 2, 4, 8]
        assert d["count"] == 2
        assert d["counts"][2] == 1   # 3 lands in le=4
        assert d["counts"][-1] == 1  # 100 overflows to +Inf

    def test_observe_value_defaults_to_latency_bounds(self):
        reg = MetricsRegistry()
        reg.observe_value("depth", 0.5)
        d = reg.snapshot()["value_histograms"]["depth"]
        assert d["bounds"] == list(HISTOGRAM_BOUNDS)

    def test_gauges_and_value_histograms_respect_enabled_flag(self):
        reg = MetricsRegistry(enabled=False)
        reg.set_gauge("g", 1)
        reg.observe_value("v", 1)
        snap = reg.snapshot()
        assert snap["gauges"] == {} and snap["value_histograms"] == {}

    def test_reset_clears_gauges_and_value_histograms(self):
        reg = MetricsRegistry()
        reg.set_gauge("g", 1)
        reg.observe_value("v", 1)
        reg.reset()
        snap = reg.snapshot()
        assert snap["gauges"] == {} and snap["value_histograms"] == {}

    def test_disabled_registry_takes_no_lock_and_mutates_nothing(self):
        """The ``REPRO_METRICS=0`` fast path must return before touching the
        lock or the maps, so unguarded callers pay one branch, no contention."""

        class CountingLock:
            def __init__(self):
                self.acquisitions = 0
                self._inner = threading.Lock()

            def __enter__(self):
                self.acquisitions += 1
                return self._inner.__enter__()

            def __exit__(self, *exc):
                return self._inner.__exit__(*exc)

        reg = MetricsRegistry(enabled=False)
        lock = CountingLock()
        reg._lock = lock
        reg.inc("x", 5)
        reg.observe("t", 0.001)
        reg.record_call("op", 0.01, nbytes=64, elements=8)
        assert lock.acquisitions == 0
        assert reg._counters == {}
        assert reg._timers == {}
        # Re-enabling restores the locked slow path.
        reg.enabled = True
        reg.inc("x")
        assert lock.acquisitions == 1
        assert reg._counters == {"x": 1}

    def test_thread_safety_of_observations(self):
        reg = MetricsRegistry()

        def worker() -> None:
            for _ in range(500):
                reg.inc("n")
                reg.observe("t", 0.001)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = reg.snapshot()
        assert snap["counters"]["n"] == 4000
        assert snap["timers"]["t"]["count"] == 4000

    def test_observations_feed_timer_and_histogram_together(self):
        reg = MetricsRegistry()
        reg.observe("op", 0.003)
        reg.record_call("op", 0.005)
        snap = reg.snapshot()
        assert snap["timers"]["op"]["count"] == 2
        assert snap["histograms"]["op"]["count"] == 2
        assert snap["histograms"]["op"]["sum_s"] == pytest.approx(0.008)

    def test_reset_bumps_epoch_and_clears_histograms(self):
        reg = MetricsRegistry()
        reg.observe("op", 0.01)
        assert reg.snapshot()["epoch"] == 0
        reg.reset()
        snap = reg.snapshot()
        assert snap["epoch"] == 1
        assert snap["histograms"] == {} and snap["timers"] == {}

    def test_snapshot_is_atomic_under_concurrent_reset(self):
        """Regression: the three maps and the epoch must come from one lock
        acquisition, so a snapshot racing reset() can never pair counters
        from one epoch with timers/histograms from another — the invariant
        ``op.calls == timers[op].count == histograms[op].count`` holds in
        every observed snapshot."""
        reg = MetricsRegistry()
        stop = threading.Event()
        bad: list[dict] = []

        def recorder() -> None:
            while not stop.is_set():
                reg.record_call("op", 0.001)

        def resetter() -> None:
            while not stop.is_set():
                reg.reset()

        def snapshotter() -> None:
            while not stop.is_set():
                snap = reg.snapshot()
                calls = snap["counters"].get("op.calls", 0)
                t_count = snap["timers"].get("op", {}).get("count", 0)
                h_count = snap["histograms"].get("op", {}).get("count", 0)
                if not (calls == t_count == h_count):
                    bad.append(snap)
                    return

        threads = (
            [threading.Thread(target=recorder) for _ in range(2)]
            + [threading.Thread(target=resetter)]
            + [threading.Thread(target=snapshotter) for _ in range(2)]
        )
        for t in threads:
            t.start()
        import time

        time.sleep(0.5)
        stop.set()
        for t in threads:
            t.join()
        assert bad == [], f"torn snapshot observed: {bad[0]}"


class TestEntryPointWiring:
    def test_transpose_inplace_records_by_default(self):
        transpose_inplace(np.arange(12 * 18, dtype=np.float64), 12, 18)
        snap = metrics.registry.snapshot()
        assert snap["counters"]["transpose_inplace.calls"] == 1
        assert snap["timers"]["transpose_inplace"]["count"] == 1
        assert snap["counters"]["bytes_moved"] > 0
        assert any(k.startswith("plan.pass.") for k in snap["timers"])

    def test_uncached_kernel_path_also_records(self):
        transpose_inplace(
            np.arange(12 * 18, dtype=np.float64), 12, 18, use_plan_cache=False
        )
        snap = metrics.registry.snapshot()
        assert snap["counters"]["transpose_inplace.calls"] == 1

    def test_batched_records(self):
        batched_transpose_inplace(np.arange(3 * 6 * 9, dtype=np.float64), 6, 9)
        snap = metrics.registry.snapshot()
        assert snap["counters"]["batched_transpose_inplace.calls"] == 1
        assert any(k.startswith("batched.pass.") for k in snap["timers"])

    def test_parallel_records_per_pass(self):
        parallel_transpose_inplace(
            np.arange(12 * 18, dtype=np.float64), 12, 18, n_threads=2
        )
        snap = metrics.registry.snapshot()
        assert any(k.startswith("parallel.pass.") for k in snap["timers"])
        assert any(k in snap["timers"] for k in ("parallel.c2r", "parallel.r2c"))

    def test_disabled_registry_records_nothing(self):
        metrics.disable()
        transpose_inplace(np.arange(12 * 18, dtype=np.float64), 12, 18)
        batched_transpose_inplace(np.arange(2 * 6 * 9, dtype=np.float64), 6, 9)
        snap = metrics.registry.snapshot()
        assert snap["counters"] == {}
        assert snap["timers"] == {}
        assert snap["metrics_enabled"] is False

    def test_full_snapshot_includes_plan_cache_stats(self):
        transpose_inplace(np.arange(6 * 8, dtype=np.float64), 6, 8)
        snap = metrics.snapshot()
        assert "plan_cache" in snap
        for field in ("hits", "misses", "evictions", "current_bytes"):
            assert field in snap["plan_cache"]


class TestWorkCounterExtensions:
    def test_bytes_moved_scales_total_by_itemsize(self):
        wc = WorkCounter()
        wc.add(10, 6)
        assert wc.bytes_moved(8) == 16 * 8
        assert wc.as_dict(itemsize=4) == {
            "reads": 10,
            "writes": 6,
            "total": 16,
            "bytes_moved": 64,
        }

    def test_strict_kernel_counter_publishes_to_registry(self):
        wc = WorkCounter()
        transpose_inplace(
            np.arange(9 * 15, dtype=np.float64), 9, 15, aux="strict", counter=wc
        )
        wc.publish("strict")
        snap = metrics.registry.snapshot()
        assert snap["counters"]["strict.reads"] == wc.reads
        assert snap["counters"]["strict.writes"] == wc.writes
        assert snap["counters"]["elements_touched"] >= wc.total


class TestStatsCommand:
    def test_stats_prints_json_with_timings_and_cache_counts(self, capsys):
        assert main(["stats", "--reset", "--shapes", "16x24,24x16,20x20"]) == 0
        snap = json.loads(capsys.readouterr().out)
        assert snap["counters"]["transpose_inplace.calls"] >= 12
        assert snap["timers"]["transpose_inplace"]["count"] >= 12
        assert any(k.startswith("plan.pass.") for k in snap["timers"])
        assert snap["plan_cache"]["hits"] > 0
        assert snap["plan_cache"]["misses"] > 0
        # Each timer has a matching latency histogram with agreeing counts.
        hist = snap["histograms"]["transpose_inplace"]
        assert hist["count"] == snap["timers"]["transpose_inplace"]["count"]
        assert sum(hist["counts"]) == hist["count"]

    def test_stats_without_exercise_is_a_pure_snapshot(self, capsys):
        before = metrics.registry.snapshot()["counters"].get(
            "transpose_inplace.calls", 0
        )
        assert main(["stats", "--no-exercise"]) == 0
        snap = json.loads(capsys.readouterr().out)
        assert snap["counters"].get("transpose_inplace.calls", 0) == before

    def test_stats_writes_output_file(self, tmp_path, capsys):
        out = tmp_path / "snap.json"
        assert main(["stats", "--output", str(out)]) == 0
        snap = json.loads(out.read_text())
        assert "plan_cache" in snap
        assert "wrote" in capsys.readouterr().out

    def test_stats_rejects_bad_shapes(self, capsys):
        assert main(["stats", "--shapes", "banana"]) == 1
        assert "error" in capsys.readouterr().out


class TestMergeSnapshot:
    """merge_snapshot folds a worker-process registry into the parent."""

    def _child(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.inc("serve.batches", 3)
        reg.record_call("batched_transpose_inplace", 0.002, nbytes=160)
        reg.observe_value("serve.batch_size", 4, (1.0, 2.0, 4.0, 8.0))
        reg.set_gauge("serve.queue_depth", 7)
        return reg

    def test_counters_add(self):
        parent = MetricsRegistry()
        parent.inc("serve.batches", 2)
        parent.merge_snapshot(self._child().snapshot())
        assert parent.snapshot()["counters"]["serve.batches"] == 5

    def test_timers_fold_count_total_min_max(self):
        parent = MetricsRegistry()
        parent.observe("op", 0.010)
        child = MetricsRegistry()
        child.observe("op", 0.001)
        child.observe("op", 0.100)
        parent.merge_snapshot(child.snapshot())
        t = parent.snapshot()["timers"]["op"]
        assert t["count"] == 3
        assert t["total_s"] == pytest.approx(0.111)
        assert t["min_s"] == pytest.approx(0.001)
        assert t["max_s"] == pytest.approx(0.100)

    def test_matching_bounds_merge_bucket_exact(self):
        parent = MetricsRegistry()
        parent.observe("op", 0.01)
        child = MetricsRegistry()
        child.observe("op", 0.01)
        child.observe("op", 1.0)
        parent.merge_snapshot(child.snapshot())
        h = parent.snapshot()["histograms"]["op"]
        assert h["count"] == 3
        assert sum(h["counts"]) == 3
        # exact buckets: both 0.01 samples share one bucket
        assert max(h["counts"]) == 2

    def test_mismatched_bounds_preserve_count(self):
        parent = MetricsRegistry()
        parent.observe_value("v", 3, (1.0, 2.0, 4.0))
        child_snap = {
            "value_histograms": {
                "v": {"bounds": [10.0, 20.0], "counts": [2, 1, 0],
                      "count": 3, "sum_s": 45.0}
            }
        }
        parent.merge_snapshot(child_snap)
        h = parent.snapshot()["value_histograms"]["v"]
        assert h["count"] == 4
        assert sum(h["counts"]) == 4

    def test_new_names_created(self):
        parent = MetricsRegistry()
        parent.merge_snapshot(self._child().snapshot())
        snap = parent.snapshot()
        assert snap["counters"]["serve.batches"] == 3
        assert snap["timers"]["batched_transpose_inplace"]["count"] == 1
        assert snap["value_histograms"]["serve.batch_size"]["count"] == 1
        assert snap["gauges"]["serve.queue_depth"] == 7.0

    def test_gauges_last_write_wins(self):
        parent = MetricsRegistry()
        parent.set_gauge("serve.queue_depth", 1)
        parent.merge_snapshot(self._child().snapshot())
        assert parent.snapshot()["gauges"]["serve.queue_depth"] == 7.0

    def test_disabled_parent_ignores_merge(self):
        parent = MetricsRegistry(enabled=False)
        parent.merge_snapshot(self._child().snapshot())
        assert parent.snapshot()["counters"] == {}

    def test_empty_snapshot_is_a_noop(self):
        parent = MetricsRegistry()
        parent.inc("x")
        parent.merge_snapshot({})
        parent.merge_snapshot(None)
        assert parent.snapshot()["counters"] == {"x": 1}
