"""Plan-cache behavior: LRU eviction under a byte budget, thread safety,
differential cached-vs-uncached equality, and the amortization win the cache
exists to deliver."""

from __future__ import annotations

import threading
from time import perf_counter

import numpy as np
import pytest

from repro.core.batched import batched_transpose_inplace
from repro.core.plan import TransposePlan
from repro.core.transpose import transpose_inplace
from repro.runtime import plan_cache
from repro.runtime.plan_cache import PlanCache, PlanKey


def _key(m: int, n: int, **kw) -> PlanKey:
    defaults = dict(
        kind="single",
        m=m,
        n=n,
        k=None,
        order="C",
        algorithm="c2r",
        variant="gather",
        dtype="float64",
    )
    defaults.update(kw)
    return PlanKey(**defaults)


@pytest.fixture(autouse=True)
def _clean_global_cache():
    """Tests observing the process-wide cache start from a known state."""
    cache = plan_cache.get_plan_cache()
    saved = (cache.max_bytes, cache.enabled)
    plan_cache.clear()
    cache.reset_stats()
    yield
    cache.configure(max_bytes=saved[0], enabled=saved[1])
    plan_cache.clear()
    cache.reset_stats()


class TestLRUEviction:
    def test_evicts_least_recently_used_under_byte_budget(self):
        plan = TransposePlan(24, 36)
        budget = int(plan.scratch_bytes * 2.5)  # room for two plans, not three
        cache = PlanCache(max_bytes=budget)
        for mm in (24, 25, 26):
            plan_cache.get_single_plan(mm, 36, "C", "c2r", "float64", cache=cache)
        stats = cache.stats()
        assert stats["misses"] == 3
        assert stats["evictions"] >= 1
        assert stats["current_bytes"] <= budget
        # 24x36 was the least recently used -> gone; 26x36 must be resident.
        assert _key(24, 36) not in cache
        assert _key(26, 36) in cache

    def test_hit_refreshes_recency(self):
        plan = TransposePlan(24, 36)
        cache = PlanCache(max_bytes=int(plan.scratch_bytes * 2.5))
        plan_cache.get_single_plan(24, 36, "C", "c2r", "float64", cache=cache)
        plan_cache.get_single_plan(25, 36, "C", "c2r", "float64", cache=cache)
        plan_cache.get_single_plan(24, 36, "C", "c2r", "float64", cache=cache)  # hit
        plan_cache.get_single_plan(26, 36, "C", "c2r", "float64", cache=cache)
        # The hit moved 24x36 to the MRU end, so 25x36 was evicted instead.
        assert _key(24, 36) in cache
        assert _key(25, 36) not in cache

    def test_oversize_plan_is_returned_but_never_retained(self):
        cache = PlanCache(max_bytes=64)
        plan = plan_cache.get_single_plan(32, 48, "C", "c2r", "float64", cache=cache)
        assert plan.m == 32
        assert len(cache) == 0
        assert cache.stats()["oversize_rejects"] == 1

    def test_shrinking_budget_evicts_immediately(self):
        cache = PlanCache()
        plan_cache.get_single_plan(24, 36, "C", "c2r", "float64", cache=cache)
        plan_cache.get_single_plan(25, 36, "C", "c2r", "float64", cache=cache)
        cache.configure(max_bytes=0)
        assert len(cache) == 0
        assert cache.stats()["current_bytes"] == 0

    def test_disabled_cache_builds_but_does_not_retain(self):
        cache = PlanCache(enabled=False)
        p1 = plan_cache.get_single_plan(24, 36, "C", "c2r", "float64", cache=cache)
        p2 = plan_cache.get_single_plan(24, 36, "C", "c2r", "float64", cache=cache)
        assert p1 is not p2
        assert len(cache) == 0
        assert cache.stats()["hits"] == cache.stats()["misses"] == 0


class TestKeying:
    def test_auto_resolves_to_heuristic_algorithm(self):
        cache = PlanCache()
        p_auto = plan_cache.get_single_plan(40, 24, "C", "auto", "float64", cache=cache)
        p_expl = plan_cache.get_single_plan(40, 24, "C", "c2r", "float64", cache=cache)
        assert p_auto is p_expl  # m > n -> c2r; auto and explicit share the entry
        assert cache.stats()["hits"] == 1

    def test_distinct_orders_and_dtypes_get_distinct_entries(self):
        cache = PlanCache()
        seen = set()
        for order in ("C", "F"):
            for dtype in ("float64", "float32"):
                plan = plan_cache.get_single_plan(
                    12, 18, order, "auto", dtype, cache=cache
                )
                seen.add(id(plan))
        assert len(cache) == 4
        assert len(seen) == 4

    def test_batched_keyed_by_batch_count(self):
        cache = PlanCache()
        plan_cache.get_batched_plan(8, 12, 4, "C", "auto", "float64", cache=cache)
        plan_cache.get_batched_plan(8, 12, 8, "C", "auto", "float64", cache=cache)
        assert len(cache) == 2


class TestDifferential:
    """Cached and uncached paths must produce bit-identical buffers."""

    @pytest.mark.parametrize("order", ["C", "F"])
    @pytest.mark.parametrize(
        "m,n", [(1, 1), (1, 17), (13, 1), (12, 18), (18, 12), (31, 37), (48, 48)]
    )
    def test_cached_matches_uncached(self, m, n, order):
        base = np.arange(m * n, dtype=np.float64)
        cached = base.copy()
        uncached = base.copy()
        transpose_inplace(cached, m, n, order)
        transpose_inplace(uncached, m, n, order, use_plan_cache=False)
        np.testing.assert_array_equal(cached, uncached)
        # And once more through the now-warm cache.
        warm = base.copy()
        transpose_inplace(warm, m, n, order)
        np.testing.assert_array_equal(warm, uncached)

    def test_cached_matches_strict_kernel(self):
        m, n = 21, 35
        base = np.arange(m * n, dtype=np.int64)
        cached = base.copy()
        strict = base.copy()
        transpose_inplace(cached, m, n)
        transpose_inplace(strict, m, n, variant="gather", aux="strict",
                          use_plan_cache=False)
        np.testing.assert_array_equal(cached, strict)

    def test_batched_cached_matches_uncached(self):
        k, m, n = 5, 9, 15
        base = np.arange(k * m * n, dtype=np.float64)
        cached = base.copy()
        uncached = base.copy()
        batched_transpose_inplace(cached, m, n)
        batched_transpose_inplace(uncached, m, n, use_plan_cache=False)
        np.testing.assert_array_equal(cached, uncached)
        expected = base.reshape(k, m, n).transpose(0, 2, 1).reshape(-1)
        np.testing.assert_array_equal(cached, expected)

    def test_use_plan_cache_rejected_for_noncached_configs(self):
        buf = np.arange(12.0)
        with pytest.raises(ValueError):
            transpose_inplace(buf, 3, 4, aux="strict", use_plan_cache=True)

    def test_noncontiguous_buffer_rejected_on_cached_path(self):
        buf = np.arange(48.0)[::2]
        with pytest.raises(ValueError, match="contiguous"):
            transpose_inplace(buf, 4, 6)


class TestConcurrency:
    def test_concurrent_mixed_shapes_through_global_cache(self):
        shapes = [(12, 18), (18, 12), (7, 29), (16, 16)]
        expected = {
            (m, n): np.arange(m * n, dtype=np.float64).reshape(m, n).T.copy().ravel()
            for m, n in shapes
        }
        errors: list[Exception] = []
        start = threading.Barrier(8)

        def worker(tid: int) -> None:
            try:
                start.wait()
                for i in range(12):
                    m, n = shapes[(tid + i) % len(shapes)]
                    buf = np.arange(m * n, dtype=np.float64)
                    transpose_inplace(buf, m, n)
                    np.testing.assert_array_equal(buf, expected[(m, n)])
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        stats = plan_cache.stats()
        # Every lookup is accounted for: 8 threads x 12 calls, each exactly
        # one hit or one miss.
        assert stats["hits"] + stats["misses"] == 8 * 12
        assert stats["hits"] > 0
        assert len(plan_cache.get_plan_cache()) == len(shapes)

    def test_cold_key_race_builds_one_shared_plan(self):
        cache = PlanCache()
        plans: list[object] = []
        lock = threading.Lock()
        start = threading.Barrier(6)

        def worker() -> None:
            start.wait()
            plan = plan_cache.get_single_plan(
                30, 42, "C", "auto", "float64", cache=cache
            )
            with lock:
                plans.append(plan)

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # All callers ended up sharing the single resident plan.
        resident = plan_cache.get_single_plan(30, 42, "C", "auto", "float64", cache=cache)
        assert all(p is resident for p in plans)
        assert len(cache) == 1

    def test_concurrent_eviction_pressure_stays_consistent(self):
        plan = TransposePlan(24, 36)
        cache = PlanCache(max_bytes=int(plan.scratch_bytes * 3.5))
        start = threading.Barrier(4)
        errors: list[Exception] = []

        def worker(tid: int) -> None:
            try:
                start.wait()
                for i in range(20):
                    mm = 24 + ((tid * 7 + i) % 10)
                    plan_cache.get_single_plan(
                        mm, 36, "C", "c2r", "float64", cache=cache
                    )
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        stats = cache.stats()
        assert stats["current_bytes"] <= stats["max_bytes"]
        assert stats["evictions"] > 0
        # current_bytes must equal the sum of resident plan footprints.
        resident = sum(nb for _, nb in cache._plans.values())
        assert stats["current_bytes"] == resident


class TestAmortization:
    def test_repeated_shapes_hit_cache_and_run_faster(self):
        """The acceptance check: on >= 3 repeated shapes, cached calls record
        hits and beat per-call planning in total wall time."""
        shapes = [(96, 144), (144, 96), (120, 120), (80, 200)]
        reps = 6
        cache = plan_cache.get_plan_cache()

        uncached_t = 0.0
        for m, n in shapes:
            proto = np.arange(m * n, dtype=np.float64)
            for _ in range(reps):
                buf = proto.copy()
                t0 = perf_counter()
                transpose_inplace(buf, m, n, use_plan_cache=False)
                uncached_t += perf_counter() - t0

        hits_before = cache.stats()["hits"]
        cached_t = 0.0
        for m, n in shapes:
            proto = np.arange(m * n, dtype=np.float64)
            transpose_inplace(proto.copy(), m, n)  # warm the cache (miss)
            for _ in range(reps):
                buf = proto.copy()
                t0 = perf_counter()
                transpose_inplace(buf, m, n)
                cached_t += perf_counter() - t0

        hits = cache.stats()["hits"] - hits_before
        assert hits >= len(shapes) * reps
        # Planning costs about one pass over the data (Section 4), so cached
        # execution should win clearly; 0.9 leaves margin for timer noise.
        assert cached_t < uncached_t * 0.9, (
            f"cached {cached_t:.4f}s not faster than uncached {uncached_t:.4f}s"
        )
