"""Tests for fixed-point reciprocal ("magic number") computation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.strength import FastDivider, compute_magic


class TestComputeMagic:
    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            compute_magic(0)
        with pytest.raises(ValueError):
            compute_magic(-3)
        with pytest.raises(ValueError):
            compute_magic(5, nbits=0)
        with pytest.raises(ValueError):
            compute_magic(5, nbits=40)

    def test_divisor_one(self):
        m = compute_magic(1)
        assert m.divide(12345) == 12345
        assert m.modulus(12345) == 0

    @pytest.mark.parametrize("d", [2, 4, 8, 1024, 2**30])
    def test_powers_of_two_become_shifts(self, d):
        m = compute_magic(d)
        assert m.multiplier == 1
        assert (1 << m.shift) == d

    @pytest.mark.parametrize("d", [3, 5, 6, 7, 9, 10, 11, 12, 13, 100, 101])
    def test_exhaustive_small_range(self, d):
        """Brute-force exactness over a dense small range + edges."""
        m = compute_magic(d, nbits=31)
        xs = list(range(0, 4096)) + [2**31 - 1 - k for k in range(64)]
        for x in xs:
            assert m.divide(x) == x // d, (d, x)
            assert m.modulus(x) == x % d, (d, x)

    @given(st.integers(1, 2**31 - 1), st.integers(0, 2**31 - 1))
    @settings(max_examples=300)
    def test_random_divisors_exact(self, d, x):
        m = compute_magic(d)
        assert m.divide(x) == x // d
        assert m.modulus(x) == x % d

    @given(st.integers(1, 2**31 - 1))
    def test_multiplier_fits_64bit_product(self, d):
        """M < 2**(nbits+1) so x*M < 2**63 never overflows int64/uint64."""
        m = compute_magic(d)
        assert m.multiplier < 2**32

    @given(st.integers(1, 255), st.integers(1, 8))
    def test_small_nbits(self, d, nbits):
        m = compute_magic(d, nbits=nbits)
        for x in range(2**nbits):
            assert m.divide(x) == x // d


class TestFastDivider:
    @given(st.integers(1, 10**6))
    @settings(max_examples=100)
    def test_vectorized_matches_numpy(self, d):
        fd = FastDivider(d)
        rng = np.random.default_rng(d)
        x = rng.integers(0, 2**31, size=512, dtype=np.int64)
        np.testing.assert_array_equal(fd.div(x), x // d)
        np.testing.assert_array_equal(fd.mod(x), x % d)

    def test_divmod_consistent(self):
        fd = FastDivider(7)
        x = np.arange(1000, dtype=np.int64)
        q, r = fd.divmod(x)
        np.testing.assert_array_equal(q * 7 + r, x)
        assert (r >= 0).all() and (r < 7).all()

    def test_accepts_any_int_dtype(self):
        fd = FastDivider(13)
        for dtype in (np.int32, np.uint32, np.int64, np.uint16):
            x = np.arange(100, dtype=dtype)
            np.testing.assert_array_equal(fd.div(x), x.astype(np.int64) // 13)

    def test_edge_of_range(self):
        fd = FastDivider(3)
        x = np.array([2**31 - 1, 2**31 - 2, 0, 1], dtype=np.int64)
        np.testing.assert_array_equal(fd.div(x), x // 3)

    def test_repr_mentions_constants(self):
        fd = FastDivider(7)
        assert "d=7" in repr(fd)

    def test_divisor_property(self):
        assert FastDivider(42).divisor == 42

    def test_scalar_input(self):
        fd = FastDivider(9)
        assert fd.div(81) == 9
        assert fd.mod(82) == 1
