"""The strength-reduced index equations must match the reference forms."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core import equations as eq
from repro.core.indexing import Decomposition
from repro.strength import ReducedEquations

from ..conftest import dim_pairs


def _grid(dec):
    i = np.arange(dec.m, dtype=np.int64)[:, None]
    j = np.arange(dec.n, dtype=np.int64)[None, :]
    return i, j


class TestReducedEquations:
    @given(dim_pairs)
    @settings(max_examples=80)
    def test_all_equations_match_reference(self, mn):
        dec = Decomposition.of(*mn)
        red = ReducedEquations(dec)
        i, j = _grid(dec)
        np.testing.assert_array_equal(red.rotate_r(i, j), eq.rotate_r_v(dec, i, j))
        np.testing.assert_array_equal(red.dprime(i, j), eq.dprime_v(dec, i, j))
        np.testing.assert_array_equal(
            red.dprime_inverse(i, j), eq.dprime_inverse_v(dec, i, j)
        )
        np.testing.assert_array_equal(red.sprime(i, j), eq.sprime_v(dec, i, j))
        rows = np.arange(dec.m, dtype=np.int64)
        np.testing.assert_array_equal(red.permute_q(rows), eq.permute_q_v(dec, rows))

    def test_matrix_builders_match(self):
        dec = Decomposition.of(36, 48)
        red = ReducedEquations(dec)
        np.testing.assert_array_equal(
            red.dprime_inverse_matrix(), eq.dprime_inverse_matrix(dec)
        )
        np.testing.assert_array_equal(red.sprime_matrix(), eq.sprime_matrix(dec))

    @pytest.mark.parametrize(
        "m,n",
        [
            (1000, 10000),
            (9999, 10000),
            (25000, 25000),
            (7, 25001),
            (46340, 46337),
        ],
    )
    def test_paper_scale_shapes_sampled(self, m, n):
        """At benchmark scale, spot-check random rows/columns for equality."""
        dec = Decomposition.of(m, n)
        red = ReducedEquations(dec)
        rng = np.random.default_rng(m * 31 + n)
        i = rng.integers(0, m, size=256).astype(np.int64)
        j = rng.integers(0, n, size=256).astype(np.int64)
        np.testing.assert_array_equal(
            red.dprime_inverse(i, j), eq.dprime_inverse_v(dec, i, j)
        )
        np.testing.assert_array_equal(red.sprime(i, j), eq.sprime_v(dec, i, j))
        np.testing.assert_array_equal(red.dprime(i, j), eq.dprime_v(dec, i, j))

    def test_rejects_oversized_shapes(self):
        with pytest.raises(ValueError):
            ReducedEquations(Decomposition.of(2**16, 2**15))
        with pytest.raises(ValueError):
            # b = n / gcd = 92682 > MAX_B
            ReducedEquations(Decomposition.of(5, 92682))

    def test_transpose_via_reduced_indices_is_correct(self):
        """End-to-end: run the C2R passes with strength-reduced gather maps."""
        m, n = 24, 36
        dec = Decomposition.of(m, n)
        red = ReducedEquations(dec)
        A = np.arange(m * n, dtype=np.int64).reshape(m, n)
        V = A.copy()
        # pre-rotate
        i, j = _grid(dec)
        V = np.take_along_axis(V, red.rotate_r(i, j), axis=0)
        V = np.take_along_axis(V, red.dprime_inverse_matrix(), axis=1)
        V = np.take_along_axis(V, red.sprime_matrix(), axis=0)
        np.testing.assert_array_equal(V.ravel().reshape(n, m), A.T)
