"""AST lint: each rule fires on a minimal offending fixture, respects
suppressions, and the real tree is clean."""

from __future__ import annotations

import textwrap

from repro.analysis.lint import (
    check_source,
    run_lint,
)


def lint(source: str, rel: str, rule: str | None = None):
    """Lint a fixture; with ``rule``, keep only that rule's findings (the
    configured hot/exec modules also produce entry-guard 'not found'
    violations for fixtures that naturally lack the real entry points)."""
    vs = check_source(textwrap.dedent(source), rel)
    if rule is not None:
        vs = [v for v in vs if v.rule == rule]
    return vs


class TestRawDivmod:
    def test_fires_in_hot_module(self):
        vs = lint("x = a % b\n", "parallel/cpu.py", rule="raw-divmod")
        assert len(vs) == 1
        vs = lint("x = a // b\n", "core/plan.py", rule="raw-divmod")
        assert len(vs) == 1

    def test_augmented_forms_fire(self):
        vs = lint("a %= b\n", "strength/reduced.py", rule="raw-divmod")
        assert len(vs) == 1

    def test_silent_outside_hot_modules(self):
        assert lint("x = a % b\n", "core/equations.py") == []

    def test_line_suppression(self):
        vs = lint(
            "x = a % b  # repro-lint: allow(raw-divmod) setup-time only\n",
            "parallel/cpu.py",
            rule="raw-divmod",
        )
        assert vs == []

    def test_def_line_suppression_covers_the_body(self):
        vs = lint(
            """\
            def f(a, b):  # repro-lint: allow(raw-divmod) reference impl
                return a % b
            """,
            "parallel/cpu.py",
            rule="raw-divmod",
        )
        assert vs == []

    def test_suppression_on_any_line_of_multiline_expression(self):
        vs = lint(
            """\
            x = (
                a % b  # repro-lint: allow(raw-divmod) because reasons
            )
            """,
            "parallel/cpu.py",
            rule="raw-divmod",
        )
        assert vs == []


class TestImplicitCopy:
    def test_ravel_fires_in_exec_module(self):
        vs = lint("y = V.ravel()\n", "core/plan.py", rule="implicit-copy")
        assert len(vs) == 1

    def test_reshape_without_guard_fires(self):
        vs = lint(
            """\
            def execute(buf):
                return buf.reshape(4, 6)
            """,
            "core/batched.py",
            rule="implicit-copy",
        )
        assert len(vs) == 1

    def test_reshape_with_contiguity_guard_passes(self):
        vs = lint(
            """\
            def execute(buf):
                if not buf.flags["C_CONTIGUOUS"]:
                    raise ValueError("need contiguous")
                return buf.reshape(4, 6)
            """,
            "core/batched.py",
            rule="implicit-copy",
        )
        assert vs == []

    def test_silent_outside_exec_modules(self):
        assert lint("y = V.ravel()\n", "gpusim/cost.py") == []


class TestEntryGuard:
    def test_missing_guard_in_configured_entry_point_fires(self):
        vs = lint(
            """\
            def transpose_inplace(buf, m, n):
                return buf
            """,
            "core/transpose.py",
        )
        assert any(
            v.rule == "entry-guard" and "transpose_inplace" in v.message for v in vs
        )

    def test_guarded_entry_points_pass(self):
        vs = lint(
            """\
            def transpose_inplace(buf, m, n):
                if not buf.flags["C_CONTIGUOUS"]:
                    raise ValueError("no")
                return buf


            def transpose(A):
                if not A.flags["C_CONTIGUOUS"]:
                    raise ValueError("no")
                return A
            """,
            "core/transpose.py",
            rule="entry-guard",
        )
        assert vs == []


class TestLockDiscipline:
    def test_unlocked_mutation_fires_in_runtime_module(self):
        vs = lint(
            """\
            import threading

            class Registry:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._counters = {}

                def inc(self, name):
                    self._counters[name] = 1
            """,
            "runtime/metrics.py",
        )
        assert any(v.rule == "lock-discipline" for v in vs)

    def test_locked_mutation_passes(self):
        vs = lint(
            """\
            import threading

            class Registry:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._counters = {}

                def inc(self, name):
                    with self._lock:
                        self._counters[name] = 1
            """,
            "runtime/metrics.py",
        )
        assert [v for v in vs if v.rule == "lock-discipline"] == []

    def test_init_is_exempt(self):
        vs = lint(
            """\
            import threading

            class Registry:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._state = 0
            """,
            "runtime/metrics.py",
        )
        assert [v for v in vs if v.rule == "lock-discipline"] == []

    def test_lockless_classes_are_exempt(self):
        vs = lint(
            """\
            class Plain:
                def __init__(self):
                    self.x = 0

                def bump(self):
                    self.x = 1
            """,
            "runtime/metrics.py",
        )
        assert [v for v in vs if v.rule == "lock-discipline"] == []


class TestTraceGranularity:
    def test_recording_in_doubly_nested_loop_fires(self):
        vs = lint(
            """\
            def execute(self, V):
                for kind in self.steps:
                    for row in V:
                        self.registry.observe("pass", 0.1)
            """,
            "core/plan.py",
            rule="trace-granularity",
        )
        assert len(vs) == 1
        assert "loop depth 2" in vs[0].message

    def test_span_and_event_and_inc_all_fire(self):
        src = """\
        def f(tr, reg, items):
            for group in items:
                for x in group:
                    with tr.span("pass.x"):
                        pass
                    tr.event("cache.hit")
                    reg.inc("n")
                    reg.record_call("op", 0.1)
        """
        vs = lint(src, "core/plan.py", rule="trace-granularity")
        assert len(vs) == 4

    def test_per_pass_recording_at_depth_one_passes(self):
        vs = lint(
            """\
            def execute(self, V):
                for kind in self.steps:
                    with self.tracer.span("pass.x"):
                        self.apply(V, kind)
                    self.registry.observe("pass.x", 0.1)
            """,
            "core/plan.py",
            rule="trace-granularity",
        )
        assert vs == []

    def test_nested_def_resets_loop_depth(self):
        # A worker closure defined under two loops runs per chunk, not per
        # element; recording at its top level is per-chunk granularity.
        vs = lint(
            """\
            def schedule(tr, passes, chunks):
                for p in passes:
                    for ch in chunks:
                        def body(sl):
                            with tr.span("worker.chunk"):
                                work(sl)
                        submit(body, ch)
            """,
            "parallel/cpu.py",
            rule="trace-granularity",
        )
        assert vs == []

    def test_while_loops_count_toward_depth(self):
        vs = lint(
            """\
            def f(tr, rows):
                while rows:
                    for r in rows:
                        tr.event("touched")
            """,
            "core/transpose.py",
            rule="trace-granularity",
        )
        assert len(vs) == 1

    def test_suppression_works(self):
        vs = lint(
            """\
            def f(tr, items):
                for group in items:
                    for x in group:
                        tr.event("x")  # repro-lint: allow(trace-granularity) O(c) groups
            """,
            "core/plan.py",
            rule="trace-granularity",
        )
        assert vs == []

    def test_unrelated_methods_in_nested_loops_pass(self):
        vs = lint(
            """\
            def f(out, items):
                for group in items:
                    for x in group:
                        out.append(x)
            """,
            "core/plan.py",
            rule="trace-granularity",
        )
        assert vs == []


class TestExceptionSwallow:
    def test_unbound_broad_except_fires_in_native(self):
        vs = lint(
            """\
            def resolve():
                try:
                    return compile()
                except Exception:
                    return None
            """,
            "native/kernel.py",
            rule="exception-swallow",
        )
        assert len(vs) == 1
        assert "REPRO006" == vs[0].code

    def test_bare_except_fires_in_serve(self):
        vs = lint(
            """\
            def handle():
                try:
                    run()
                except:
                    pass
            """,
            "serve/server.py",
            rule="exception-swallow",
        )
        assert len(vs) == 1
        assert "bare except" in vs[0].message

    def test_tuple_containing_broad_type_fires(self):
        vs = lint(
            """\
            def f():
                try:
                    run()
                except (ValueError, Exception):
                    return 0
            """,
            "native/__init__.py",
            rule="exception-swallow",
        )
        assert len(vs) == 1

    def test_binding_the_exception_is_clean(self):
        vs = lint(
            """\
            def resolve():
                try:
                    return compile()
                except Exception as exc:
                    record_fallback(str(exc))
                    return None
            """,
            "native/kernel.py",
            rule="exception-swallow",
        )
        assert vs == []

    def test_reraising_is_clean(self):
        vs = lint(
            """\
            def f(path):
                try:
                    build(path)
                except BaseException:
                    cleanup(path)
                    raise
            """,
            "native/kernel.py",
            rule="exception-swallow",
        )
        assert vs == []

    def test_narrow_handlers_are_clean(self):
        vs = lint(
            """\
            def f():
                try:
                    run()
                except OSError:
                    return None
            """,
            "serve/workers.py",
            rule="exception-swallow",
        )
        assert vs == []

    def test_silent_outside_native_and_serve(self):
        vs = lint(
            """\
            def f():
                try:
                    run()
                except Exception:
                    return None
            """,
            "core/equations.py",
            rule="exception-swallow",
        )
        assert vs == []

    def test_line_suppression(self):
        vs = lint(
            """\
            def probe():
                try:
                    import cffi
                except Exception:  # repro-lint: allow(exception-swallow) probe
                    return False
                return True
            """,
            "native/kernel.py",
            rule="exception-swallow",
        )
        assert vs == []


class TestEventTraceId:
    def test_emit_without_trace_id_fires(self):
        vs = lint(
            """\
            def admit(event_log, r):
                event_log.emit("admit", request=r.id)
            """,
            "serve/server.py",
            rule="event-trace-id",
        )
        assert len(vs) == 1
        assert "trace_id" in vs[0].message
        assert vs[0].code == "REPRO007"

    def test_emit_with_trace_id_passes(self):
        vs = lint(
            """\
            def admit(event_log, r):
                event_log.emit("admit", trace_id=r.trace_id, request=r.id)
            """,
            "serve/server.py",
            rule="event-trace-id",
        )
        assert vs == []

    def test_lazily_bound_alias_receivers_are_covered(self):
        vs = lint(
            """\
            def evict(_event_log, key):
                ev = _event_log()
                ev.emit("evict", key=key)
                _event_log().emit("evict", key=key)
            """,
            "runtime/plan_cache.py",
            rule="event-trace-id",
        )
        assert len(vs) == 2

    def test_unrelated_emit_receivers_are_ignored(self):
        vs = lint(
            """\
            def log(logger, signal):
                logger.emit("message")
                signal.emit()
            """,
            "serve/server.py",
            rule="event-trace-id",
        )
        assert vs == []

    def test_rule_applies_everywhere_not_just_serve(self):
        vs = lint(
            "def f(event_log):\n    event_log.emit(\"fallback\")\n",
            "native/__init__.py",
            rule="event-trace-id",
        )
        assert len(vs) == 1

    def test_line_suppression(self):
        vs = lint(
            """\
            def f(event_log):
                event_log.emit("boot")  # repro-lint: allow(event-trace-id) pre-request
            """,
            "serve/server.py",
            rule="event-trace-id",
        )
        assert vs == []


class TestWholeFileMemmap:
    def test_np_memmap_outside_stream_fires(self):
        vs = lint(
            "import numpy as np\nbuf = np.memmap('f.bin', mode='r+')\n",
            "core/outofcore.py",
            rule="whole-file-memmap",
        )
        assert len(vs) == 1
        assert vs[0].code == "REPRO008"

    def test_bare_memmap_import_fires(self):
        vs = lint(
            "from numpy import memmap\nbuf = memmap('f.bin')\n",
            "cli.py",
            rule="whole-file-memmap",
        )
        assert len(vs) == 1

    def test_stream_modules_are_exempt(self):
        vs = lint(
            "import numpy as np\nmm = np.memmap('f.bin', mode='r+')\n",
            "stream/window.py",
            rule="whole-file-memmap",
        )
        assert vs == []

    def test_line_suppression(self):
        vs = lint(
            "import numpy as np\n"
            "buf = np.memmap('f.bin')  "
            "# repro-lint: allow(whole-file-memmap) not yet streamed\n",
            "cli.py",
            rule="whole-file-memmap",
        )
        assert vs == []


class TestRealTree:
    def test_repro_package_is_lint_clean(self):
        assert run_lint() == []

    def test_unparseable_module_reports_instead_of_crashing(self):
        vs = lint("def broken(:\n", "core/plan.py")
        assert len(vs) == 1 and "unparseable" in vs[0].message
