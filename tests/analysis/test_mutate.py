"""Mutation harness: the full run kills every applicable mutant across
at least MIN_CLASSES fault classes, and the report logic is honest about
survivors, skips, and clean failures."""

from __future__ import annotations

import pytest

from repro.analysis.mutate import (
    FAULT_CLASSES,
    MIN_CLASSES,
    MUTATION_CONFIGS,
    FaultClass,
    MutantResult,
    MutationReport,
    run_mutation_harness,
)


@pytest.fixture(scope="module")
def full_report():
    return run_mutation_harness()


class TestFullHarness:
    def test_zero_survivors_and_enough_classes(self, full_report):
        assert full_report.ok, full_report.as_dict()
        assert full_report.clean_failures == []
        assert full_report.survivors == []
        assert full_report.killed == full_report.applied
        assert len(full_report.classes_applied) >= MIN_CLASSES

    def test_every_fault_class_applies_somewhere(self, full_report):
        # the taxonomy carries no dead weight: each class anchors in at
        # least one of the four kernel variants
        assert set(full_report.classes_applied) == {
            fc.name for fc in FAULT_CLASSES
        }

    def test_as_dict_is_report_shaped(self, full_report):
        d = full_report.as_dict()
        assert d["ok"] is True
        assert d["applied"] == full_report.applied
        assert d["killed"] == d["applied"]
        assert d["survivors"] == [] and d["clean_failures"] == []
        assert d["min_classes"] == MIN_CLASSES


class TestHarnessMechanics:
    def test_inapplicable_fault_class_is_skipped(self):
        never = FaultClass("no-anchor", "matches nothing", lambda src: None)
        rep = run_mutation_harness(
            configs=[MUTATION_CONFIGS[0]], fault_classes=(never,)
        )
        assert rep.applied == 0
        assert rep.clean_failures == []
        # zero classes applied is below the bar, so the run is not ok
        assert not rep.ok

    def test_single_fault_class_is_killed(self):
        rep = run_mutation_harness(
            configs=[MUTATION_CONFIGS[0]], fault_classes=(FAULT_CLASSES[0],)
        )
        assert rep.applied == 1 and rep.killed == 1
        assert rep.mutants[0].fault == FAULT_CLASSES[0].name
        assert rep.mutants[0].failed_checks

    def test_equivalent_mutant_survives_and_fails_the_run(self):
        # a "fault" that does not change behaviour must be reported as a
        # survivor — this is the property that makes 0-survivors meaningful
        noop = FaultClass(
            "whitespace-only",
            "adds a trailing comment (semantically equivalent)",
            lambda src: src + "\n/* mutant */\n",
        )
        rep = run_mutation_harness(
            configs=[MUTATION_CONFIGS[0]], fault_classes=(noop,)
        )
        assert rep.applied == 1
        assert [r.fault for r in rep.survivors] == ["whitespace-only"]
        assert not rep.ok

    def test_progress_callback_reports_verdicts(self):
        lines = []
        run_mutation_harness(
            configs=[MUTATION_CONFIGS[0]],
            fault_classes=(FAULT_CLASSES[0],),
            progress=lines.append,
        )
        assert len(lines) == 1 and "killed" in lines[0]


class TestReportLogic:
    def _mutant(self, fault, killed):
        return MutantResult(
            fault=fault, m=12, n=18, order="C", algorithm="c2r",
            itemsize=8, killed=killed,
        )

    def test_ok_requires_min_classes(self):
        rep = MutationReport(
            mutants=[self._mutant(f"f{i}", True) for i in range(MIN_CLASSES)]
        )
        assert rep.ok
        rep = MutationReport(
            mutants=[
                self._mutant(f"f{i}", True) for i in range(MIN_CLASSES - 1)
            ]
        )
        assert not rep.ok

    def test_ok_fails_on_survivor_or_clean_failure(self):
        mutants = [self._mutant(f"f{i}", True) for i in range(MIN_CLASSES)]
        rep = MutationReport(mutants=mutants + [self._mutant("weak", False)])
        assert not rep.ok
        rep = MutationReport(
            mutants=mutants, clean_failures=[{"m": 12, "n": 18}]
        )
        assert not rep.ok

    def test_classes_applied_deduplicates_preserving_order(self):
        rep = MutationReport(
            mutants=[
                self._mutant("a", True),
                self._mutant("b", True),
                self._mutant("a", True),
            ]
        )
        assert rep.classes_applied == ["a", "b"]
