"""Static race proof and the shadow-memory sanitizer."""

from __future__ import annotations

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.racecheck import (
    Rect,
    Sanitizer,
    SanitizerError,
    banded_footprints,
    check_banded_schedule,
    check_mp_schedule,
    check_partition,
    check_schedule,
    mp_schedule_footprints,
    schedule_footprints,
)
from repro.core.plan import TransposePlan
from repro.parallel.cpu import ParallelTranspose


class TestRect:
    def test_area_and_intersection(self):
        a = Rect(0, 4, 0, 6)
        b = Rect(4, 8, 0, 6)
        assert a.area == 24
        assert not a.intersects(b), "half-open rectangles sharing an edge are disjoint"
        assert a.intersects(Rect(3, 5, 2, 3))

    def test_containment(self):
        outer = Rect(0, 10, 0, 10)
        assert outer.contains(Rect(2, 5, 3, 7))
        assert not Rect(2, 5, 3, 7).contains(outer)


class TestStaticProof:
    @pytest.mark.parametrize("threads", [1, 2, 3, 8, 64])
    @pytest.mark.parametrize(
        "m,n", [(1, 1), (4, 6), (12, 18), (13, 17), (64, 48)]
    )
    @pytest.mark.parametrize("algorithm", ["c2r", "r2c"])
    def test_schedules_are_race_free(self, m, n, threads, algorithm):
        report = check_schedule(m, n, threads, algorithm)
        assert report.ok, report.failures

    def test_pass_structure_matches_transposer(self):
        # Shared-factor shape: rotation + shuffle + shuffle for c2r.
        names = [p.name for p in schedule_footprints(12, 18, 4, "c2r")]
        assert names == ["pre_rotate", "row_shuffle", "column_shuffle"]
        names = [p.name for p in schedule_footprints(12, 18, 4, "r2c")]
        assert names == ["inverse_column_shuffle", "row_shuffle_r2c", "post_rotate"]
        # Coprime shape: no rotation pass.
        names = [p.name for p in schedule_footprints(5, 7, 4, "c2r")]
        assert names == ["row_shuffle", "column_shuffle"]

    def test_detects_a_constructed_overlap(self):
        # The proof must reject overlapping rectangles, not rubber-stamp them.
        a = Rect(0, 3, 0, 6)
        b = Rect(2, 5, 0, 6)
        assert a.intersects(b)

    @given(
        total=st.integers(0, 5000),
        parts=st.integers(1, 64),
    )
    @settings(max_examples=60, deadline=None)
    def test_partition_proof_accepts_balanced_chunks(self, total, parts):
        ok, detail = check_partition(total, parts)
        assert ok, detail


class TestMpScheduleProof:
    @pytest.mark.parametrize("workers", [1, 2, 3, 8])
    @pytest.mark.parametrize(
        "m,n", [(1, 1), (4, 6), (12, 18), (13, 17), (64, 48)]
    )
    @pytest.mark.parametrize("algorithm", ["c2r", "r2c"])
    def test_mp_schedules_are_race_free(self, m, n, workers, algorithm):
        report = check_mp_schedule(m, n, workers, algorithm)
        assert report.ok, report.failures

    def test_mp_footprints_match_thread_geometry(self):
        # Same balanced_chunks over the same pass structure: the mp backend
        # inherits the thread proof element-for-element.
        th = schedule_footprints(12, 18, 4, "c2r")
        mp = mp_schedule_footprints(12, 18, 4, "c2r")
        assert [p.name for p in th] == [p.name for p, _ in mp]
        for a, (b, _) in zip(th, mp):
            assert a.chunks == b.chunks

    def test_mp_descriptors_mirror_run_pass(self):
        for p, descriptors in mp_schedule_footprints(12, 18, 3, "c2r"):
            assert len({d.segment for d in descriptors}) == 1
            assert all((d.vm, d.vn) == (12, 18) for d in descriptors)
            assert all(d.pass_name == p.name for d in descriptors)
            assert descriptors[0].lo == 0
            assert descriptors[-1].hi == p.total

    def test_mp_proof_rejects_inconsistent_views(self):
        # A descriptor carrying a stale (vm, vn) would reinterpret the
        # shared segment with the wrong stride; the checker must notice.
        import repro.analysis.racecheck as rc

        orig = rc.mp_schedule_footprints

        def corrupted(m, n, workers, algorithm="auto", *, segment="shm"):
            out = orig(m, n, workers, algorithm, segment=segment)
            p, descs = out[0]
            bad = rc.MpTaskDescriptor(
                descs[0].segment, n, m, descs[0].pass_name,
                descs[0].lo, descs[0].hi,
            )
            out[0] = (p, (bad,) + descs[1:])
            return out

        rc.mp_schedule_footprints = corrupted
        try:
            report = check_mp_schedule(12, 18, 3, "c2r")
        finally:
            rc.mp_schedule_footprints = orig
        assert not report.ok
        assert any("views" in f for f in report.failures)


class TestBandedScheduleProof:
    @pytest.mark.parametrize("bands", [1, 2, 3, 7])
    @pytest.mark.parametrize("threads", [1, 2, 4])
    @pytest.mark.parametrize(
        "m,n", [(1, 1), (4, 6), (12, 18), (13, 17), (64, 48)]
    )
    @pytest.mark.parametrize("algorithm", ["c2r", "r2c"])
    def test_banded_schedules_are_race_free(self, m, n, bands, threads, algorithm):
        report = check_banded_schedule(m, n, bands, threads, algorithm)
        assert report.ok, report.failures
        assert report.as_dict()["n_bands"] == bands

    def test_one_band_degenerates_to_thread_schedule(self):
        th = schedule_footprints(12, 18, 4, "r2c")
        banded = banded_footprints(12, 18, 1, 4, "r2c")
        for a, b in zip(th, banded):
            assert a.name == b.name
            assert [c.writes for c in a.chunks] == [c.writes for c in b.chunks]

    def test_band_labels_carry_provenance(self):
        passes = banded_footprints(12, 18, 2, 2, "c2r")
        labels = [c.label for c in passes[1].chunks]
        assert all(label.startswith("band") for label in labels)
        assert any(label.startswith("band1/") for label in labels)

    def test_banded_proof_rejects_overlapping_bands(self):
        # Hand-build a pass whose second band re-covers the first band's
        # rows: the cross-band disjointness check must fail.
        from repro.analysis.racecheck import (
            ChunkFootprint,
            PassFootprints,
            _prove_rects,
        )

        m, n = 8, 6
        overlapping = PassFootprints(
            name="row_shuffle",
            total=m,
            chunks=(
                ChunkFootprint("band0/rows[0:4]", Rect(0, 4, 0, n), Rect(0, 4, 0, n)),
                ChunkFootprint("band1/rows[2:8]", Rect(2, 8, 0, n), Rect(2, 8, 0, n)),
            ),
        )
        failures = _prove_rects(overlapping, m, n)
        assert any("overlap" in f for f in failures)


class TestSanitizerViolations:
    def _san(self):
        return Sanitizer(enabled=True)

    def test_double_write_raises_with_provenance(self):
        san = self._san()
        with pytest.raises(SanitizerError) as exc:
            with san.pass_scope("p", 8):
                san.record(writes=np.array([0, 1]), where="chunk-a")
                san.record(writes=np.array([1, 2]), where="chunk-b")
        assert exc.value.kind == "double write"
        assert exc.value.pass_name == "p"
        assert exc.value.where == "chunk-b"
        assert 1 in exc.value.indices

    def test_read_after_clobber_raises(self):
        san = self._san()
        with pytest.raises(SanitizerError) as exc:
            with san.pass_scope("p", 8):
                san.record(writes=np.array([3]))
                san.record(reads=np.array([3]), where="late gather")
        assert exc.value.kind == "read-after-clobber"

    def test_read_before_write_is_legal_gather_order(self):
        san = self._san()
        with san.pass_scope("p", 4):
            san.record(reads=np.arange(4), writes=np.arange(4))
        assert san.passes_checked == 1

    def test_missed_write_raises_for_full_coverage_pass(self):
        san = self._san()
        with pytest.raises(SanitizerError) as exc:
            with san.pass_scope("p", 4):
                san.record(writes=np.array([0, 1, 2]))
        assert exc.value.kind == "missed write"
        assert 3 in exc.value.indices

    def test_partial_coverage_pass_allows_skips(self):
        san = self._san()
        with san.pass_scope("rotate", 4, full_coverage=False):
            san.record(writes=np.array([0, 1]))
        assert san.passes_checked == 1

    def test_out_of_bounds_raises(self):
        san = self._san()
        with pytest.raises(SanitizerError) as exc:
            with san.pass_scope("p", 4, full_coverage=False):
                san.record(writes=np.array([4]))
        assert exc.value.kind == "out-of-bounds write"

    def test_nested_pass_raises_instead_of_deadlocking(self):
        san = self._san()
        with pytest.raises(SanitizerError) as exc:
            with san.pass_scope("outer", 4, full_coverage=False):
                with san.pass_scope("inner", 4):
                    pass
        assert exc.value.kind == "nested pass"

    def test_record_outside_scope_is_inert(self):
        san = self._san()
        san.record(writes=np.array([0]))  # no scope: must not raise

    def test_failed_pass_releases_the_scope(self):
        san = self._san()
        with pytest.raises(SanitizerError):
            with san.pass_scope("p", 2):
                san.record(writes=np.array([0, 0]))
        # A clean follow-up pass must work: the shadow was torn down.
        with san.pass_scope("p2", 2):
            san.record(writes=np.array([0, 1]))


class TestExecutionHooks:
    """The real executors run clean under the sanitizer, and a corrupted
    plan is caught — the end-to-end contract of the tentpole."""

    @pytest.fixture(autouse=True)
    def _enabled(self):
        from repro.analysis import racecheck

        was = racecheck.sanitizer.enabled
        racecheck.enable()
        yield
        racecheck.sanitizer.enabled = was

    @pytest.mark.parametrize("order", ["C", "F"])
    @pytest.mark.parametrize("algorithm", ["c2r", "r2c"])
    def test_plan_execute_runs_clean(self, order, algorithm):
        m, n = 12, 18
        plan = TransposePlan(m, n, order, algorithm)
        buf = np.arange(m * n, dtype=np.int64)
        expected = buf.reshape((m, n), order=order).T.ravel(order=order).copy()
        plan.execute(buf)
        assert np.array_equal(buf, expected)

    @pytest.mark.parametrize("threads", [1, 3])
    def test_parallel_transpose_runs_clean(self, threads):
        with ParallelTranspose(threads) as pt:
            for m, n in [(12, 18), (7, 5), (16, 16), (1, 9)]:
                buf = np.arange(m * n, dtype=np.int64)
                expected = buf.reshape(m, n).T.ravel().copy()
                pt.transpose_inplace(buf, m, n)
                assert np.array_equal(buf, expected)

    def test_corrupted_plan_payload_is_caught(self):
        # Gather bijectivity is proven statically by the verifier; what the
        # sanitizer owns at runtime is the write discipline.  Corrupt the
        # rotation schedule so one column group is processed twice: the
        # second visit reads elements its own pass already overwrote.
        m, n = 12, 18  # gcd 6 > 1, so the plan starts with rotate_groups
        plan = TransposePlan(m, n, "C", "c2r")
        kind, payload = plan._steps[0]
        assert kind == "rotate_groups"
        plan._steps[0] = (kind, list(payload) + list(payload[:1]))
        with pytest.raises(SanitizerError) as exc:
            plan.execute(np.arange(m * n, dtype=np.int64))
        assert exc.value.kind in ("read-after-clobber", "double write")

    def test_concurrent_plan_executions_serialize_not_crash(self):
        m, n = 24, 36
        plan = TransposePlan(m, n)
        base = np.arange(m * n, dtype=np.float64)
        expected = base.reshape(m, n).T.ravel().copy()
        errors: list[Exception] = []

        def worker():
            try:
                for _ in range(3):
                    buf = base.copy()
                    plan.execute(buf)
                    np.testing.assert_array_equal(buf, expected)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors

    def test_stats_accumulate(self):
        from repro.analysis.racecheck import sanitizer

        before = sanitizer.stats()["passes_checked"]
        TransposePlan(6, 9).execute(np.arange(54, dtype=np.float64))
        after = sanitizer.stats()["passes_checked"]
        assert after > before
