"""Permutation verifier: the certificates themselves, and that they are
*discriminating* — a wrong map must fail, not just a right map pass."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.algebra import (
    composed_source_map,
    transposition_source_map,
    verify_lattice,
    verify_shape,
)


class TestReferencePermutation:
    def test_transposition_source_map_matches_numpy(self):
        m, n = 6, 8
        A = np.arange(m * n, dtype=np.int64)
        expected = A.reshape(m, n).T.ravel()
        assert np.array_equal(A[transposition_source_map(m, n)], expected)

    def test_source_map_is_a_permutation(self):
        src = transposition_source_map(9, 14)
        assert np.array_equal(np.sort(src), np.arange(9 * 14))


class TestComposition:
    @pytest.mark.parametrize("algorithm", ["c2r", "r2c"])
    @pytest.mark.parametrize(
        "m,n",
        [(1, 1), (1, 7), (7, 1), (4, 6), (6, 4), (32, 32), (9, 14), (30, 42)],
    )
    def test_composed_passes_equal_transposition(self, m, n, algorithm):
        assert np.array_equal(
            composed_source_map(m, n, algorithm), transposition_source_map(m, n)
        )

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError):
            composed_source_map(4, 6, "zigzag")


class TestVerifyShape:
    @pytest.mark.parametrize(
        "m,n", [(1, 1), (2, 3), (4, 6), (12, 18), (13, 13), (16, 24), (31, 7)]
    )
    def test_representative_shapes_prove_clean(self, m, n):
        report = verify_shape(m, n)
        assert report.ok, [c.as_dict() for c in report.failures]
        assert report.checks, "a shape report must contain certificates"

    def test_report_shape_metadata(self):
        report = verify_shape(4, 6)
        d = report.as_dict()
        assert (d["m"], d["n"]) == (4, 6)
        assert d["ok"] is True and d["failures"] == []

    def test_certificates_cover_all_layers(self):
        names = {c.name for c in verify_shape(12, 18).checks}
        for fragment in (
            "decomposition",
            "bijective",
            "inversion",
            "composition",
            "fastdiv",
        ):
            assert any(fragment in name for name in names), (fragment, names)

    @given(
        m=st.integers(1, 40),
        n=st.integers(1, 40),
    )
    @settings(max_examples=30, deadline=None)
    def test_random_shapes_prove_clean(self, m, n):
        assert verify_shape(m, n, plan_objects=False).ok


class TestDiscrimination:
    """A verifier that cannot fail proves nothing: break each layer and
    watch the matching certificate trip."""

    def test_broken_composition_is_detected(self, monkeypatch):
        from repro.analysis import algebra

        def broken(m, n, algorithm):
            src = transposition_source_map(m, n).copy()
            if src.size >= 2:
                src[0], src[1] = src[1], src[0]
            return src

        monkeypatch.setattr(algebra, "composed_source_map", broken)
        report = algebra.verify_shape(4, 6, fastdiv=False, plan_objects=False)
        assert not report.ok
        assert any("composition" in c.name for c in report.failures)

    def test_broken_gather_map_is_detected(self, monkeypatch):
        from repro.analysis import algebra
        from repro.core import equations as eq

        real = eq.dprime_inverse_v

        def broken(dec, i, j):
            out = real(dec, i, j).copy()
            out[...] = 0  # constant map: wildly non-bijective
            return out

        monkeypatch.setattr(algebra.eq, "dprime_inverse_v", broken)
        report = algebra.verify_shape(4, 6, fastdiv=False, plan_objects=False)
        assert not report.ok


class TestOddAndPrimeShapes:
    """Non-square, prime, and degenerate shapes through the full analyze
    certificate stack — both algorithms, including the built-plan
    cross-check and corrupted-plan detection."""

    @pytest.mark.parametrize("m,n", [(7, 13), (13, 7), (1, 17), (17, 1)])
    def test_full_certificates_prove_clean(self, m, n):
        report = verify_shape(m, n, plan_objects=True)
        assert report.ok, [c.as_dict() for c in report.failures]
        names = {c.name for c in report.checks}
        # the plan-object cross-check covers order x algorithm explicitly
        for order in ("C", "F"):
            for algorithm in ("c2r", "r2c"):
                assert f"plan-object-{order}-{algorithm}" in names
        assert "composition-c2r" in names and "composition-r2c" in names

    @pytest.mark.parametrize("m,n", [(7, 13), (1, 17)])
    def test_corrupted_plan_is_detected(self, m, n, monkeypatch):
        from repro.core.plan import TransposePlan

        real = TransposePlan._apply_step

        def corrupted(V, kind, payload):
            real(V, kind, payload)
            # poison one cell with a value outside the permutation domain:
            # every plan step is a permutation, so the poison survives to
            # the final buffer no matter how later steps shuffle it
            V.reshape(-1)[0] = -1

        monkeypatch.setattr(
            TransposePlan, "_apply_step", staticmethod(corrupted)
        )
        report = verify_shape(m, n, fastdiv=False, plan_objects=True)
        assert not report.ok
        assert all(
            c.name.startswith("plan-object-") for c in report.failures
        ), [c.as_dict() for c in report.failures]
        # every order x algorithm variant runs the corrupted step
        assert len(report.failures) == 4


class TestVerifyLattice:
    def test_small_lattice_proves_clean(self):
        report = verify_lattice(12, 12)
        assert report.ok, report.failures
        assert report.shapes == 144
        assert report.checks > 0

    def test_progress_callback_reports_done_of_total(self):
        seen = []
        verify_lattice(3, 4, progress=lambda done, total: seen.append((done, total)))
        assert seen == [(4, 12), (8, 12), (12, 12)]
