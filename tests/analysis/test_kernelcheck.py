"""Kernel verifier: clean kernels certify on odd/prime/degenerate shapes
for both algorithms, every advertised check runs, and corrupted
translation units are detected."""

from __future__ import annotations

import re

import pytest

from repro.analysis.kernelcheck import (
    DEFAULT_CONFIGS,
    NativeReport,
    verify_kernel,
    verify_native,
)
from repro.core.plan import TransposePlan
from repro.native.codegen import generate_source

ODD_SHAPES = [(7, 13), (13, 7), (1, 17), (17, 1)]


def source_for(m, n, *, order="C", algorithm="auto", itemsize=8):
    plan = TransposePlan(m, n, order=order, algorithm=algorithm)
    return generate_source(plan.dec, plan.algorithm, itemsize).source


class TestCleanKernels:
    @pytest.mark.parametrize("m,n", ODD_SHAPES)
    @pytest.mark.parametrize("algorithm", ["c2r", "r2c"])
    def test_odd_and_prime_shapes_certify(self, m, n, algorithm):
        rep = verify_kernel(m, n, algorithm=algorithm, thread_counts=(2,))
        assert rep.ok, [c.as_dict() for c in rep.failures]
        assert rep.algorithm == algorithm

    def test_f_order_and_narrow_itemsize_certify(self):
        rep = verify_kernel(12, 18, order="F", itemsize=2, thread_counts=(2,))
        assert rep.ok, [c.as_dict() for c in rep.failures]
        rep = verify_kernel(6, 4, itemsize=4, thread_counts=(2,))
        assert rep.ok, [c.as_dict() for c in rep.failures]

    def test_all_advertised_checks_present(self):
        rep = verify_kernel(12, 18, thread_counts=(2, 4))
        names = [c.name for c in rep.checks]
        for expected in (
            "parse",
            "symbols",
            "layout",
            "plan-constants",
            "plan-composition",
            "algebra-equivalence",
            "batch-run",
        ):
            assert expected in names
        for letter in "MNABC":
            assert f"fastdiv-{letter}" in names
        for i, pname in enumerate(rep.passes):
            assert f"pass{i}-{pname}-exec" in names
            assert f"pass{i}-{pname}-semantics" in names
            assert f"pass{i}-{pname}-chunks-t2" in names
            assert f"pass{i}-{pname}-chunks-t4" in names
        # 12x18 has c = gcd = 6 > 1, so the plan carries a rotate pass
        assert len(rep.passes) == 3

    def test_report_as_dict_shape(self):
        rep = verify_kernel(7, 13, thread_counts=(2,))
        d = rep.as_dict()
        assert d["ok"] is True
        assert d["failures"] == []
        assert d["checks"] == len(rep.checks)
        assert d["m"] == 7 and d["n"] == 13

    def test_algebra_equivalence_detail_names_the_relation(self):
        rep = verify_kernel(7, 13, algorithm="c2r", thread_counts=(2,))
        alg = next(c for c in rep.checks if c.name == "algebra-equivalence")
        assert "transposition_source_map" in alg.detail
        rep = verify_kernel(7, 13, algorithm="r2c", thread_counts=(2,))
        alg = next(c for c in rep.checks if c.name == "algebra-equivalence")
        assert "inverse" in alg.detail


class TestCorruptedKernels:
    def test_unparseable_source_fails_parse(self):
        rep = verify_kernel(7, 13, source="int64_t f( {", thread_counts=(2,))
        assert not rep.ok
        assert rep.checks[-1].name == "parse"

    def test_missing_symbol_fails(self):
        src = source_for(7, 13)
        broken = src.replace("repro_run_batch", "repro_run_hatch")
        rep = verify_kernel(7, 13, source=broken, thread_counts=(2,))
        assert not rep.ok
        fail = next(c for c in rep.checks if not c.ok)
        assert fail.name == "symbols"
        assert "repro_run_batch" in fail.detail

    def test_wrong_plan_constant_fails(self):
        src = source_for(7, 13)
        broken = re.sub(
            r"#define M INT64_C\((\d+)\)",
            lambda mo: f"#define M INT64_C({int(mo.group(1)) + 1})",
            src,
            count=1,
        )
        assert broken != src
        rep = verify_kernel(7, 13, source=broken, thread_counts=(2,))
        assert not rep.ok
        assert any(
            not c.ok and c.name == "plan-constants" for c in rep.checks
        )

    def test_corrupted_fastdiv_multiplier_fails(self):
        src = source_for(12, 18)
        mo = re.search(
            r"#define DIV_M\(x\) \(\(int64_t\)\(\(\(uint64_t\)\(x\) \* "
            r"UINT64_C\((\d+)\)",
            src,
        )
        assert mo is not None
        lit = mo.group(1)
        broken = src.replace(f"UINT64_C({lit})", f"UINT64_C({int(lit) * 3})", 1)
        rep = verify_kernel(12, 18, source=broken, thread_counts=(2,))
        assert not rep.ok
        assert any(not c.ok and c.name == "fastdiv-M" for c in rep.checks)

    def test_corrupted_gather_is_caught_by_pass_semantics(self):
        # swap the c2r algorithm's source for the r2c kernel of the same
        # decomposition: parses, has the symbols, but computes the inverse
        # permutation — the per-pass layout/semantics checks must object.
        wrong = source_for(7, 13, algorithm="r2c")
        rep = verify_kernel(7, 13, algorithm="c2r", source=wrong,
                            thread_counts=(2,))
        assert not rep.ok


class TestVerifyNative:
    def test_sweep_over_odd_shapes_both_algorithms(self):
        configs = [(m, n, "C", 8) for m, n in ODD_SHAPES]
        rep = verify_native(configs, thread_counts=(2,))
        assert isinstance(rep, NativeReport)
        assert rep.ok
        assert len(rep.kernels) == 2 * len(configs)
        seen = {(k.m, k.n, k.algorithm) for k in rep.kernels}
        assert (7, 13, "c2r") in seen and (13, 7, "r2c") in seen

    def test_sweep_skips_ineligible_configs_with_reason(self):
        # itemsize 3 is not a width the codegen emits kernels for
        rep = verify_native([(6, 4, "C", 3)], thread_counts=(2,))
        assert rep.kernels == []
        assert len(rep.skipped) == 2
        assert all(s["reason"] for s in rep.skipped)
        assert rep.ok  # skipped-only sweeps are vacuously ok

    def test_progress_callback_receives_lines(self):
        lines = []
        verify_native([(6, 4, "C", 4)], thread_counts=(2,),
                      progress=lines.append)
        assert len(lines) == 2
        assert all("kernelcheck 6x4" in ln for ln in lines)

    def test_as_dict_aggregates(self):
        rep = verify_native([(7, 13, "C", 8)], thread_counts=(2,))
        d = rep.as_dict()
        assert d["ok"] is True
        assert d["kernels"] == 2
        assert d["checks"] == sum(len(k.checks) for k in rep.kernels)
        assert len(d["reports"]) == 2

    def test_default_configs_cover_the_ci_lattice(self):
        shapes = {(m, n) for m, n, _, _ in DEFAULT_CONFIGS}
        assert (256, 384) in shapes  # bench-smoke shape
        assert any(order == "F" for _, _, order, _ in DEFAULT_CONFIGS)
        sizes = {i for _, _, _, i in DEFAULT_CONFIGS}
        assert {1, 2, 4, 8, 16} <= sizes
