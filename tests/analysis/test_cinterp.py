"""The checking C interpreter: faithful arithmetic, every fault class in
the checked memory model, budgets, macros, and footprint tracking."""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis.cinterp import (
    CBudgetExceeded,
    CInterp,
    CInterpError,
    CMemoryFault,
    CParseError,
    preprocess,
)


def interp(src: str, **kw) -> CInterp:
    return CInterp(textwrap.dedent(src), **kw)


class TestArithmetic:
    def test_basic_expressions_and_calls(self):
        it = interp(
            """\
            int64_t f(int64_t a, int64_t b) {
              return a * b + (a - b);
            }
            """
        )
        assert it.call("f", 7, 3) == 25

    def test_division_truncates_toward_zero(self):
        it = interp(
            """\
            int64_t q(int64_t a, int64_t b) { return a / b; }
            int64_t r(int64_t a, int64_t b) { return a % b; }
            """
        )
        # C truncation, not Python floor: -7/2 == -3, -7%2 == -1
        assert it.call("q", -7, 2) == -3
        assert it.call("r", -7, 2) == -1
        assert it.call("q", 7, -2) == -3
        assert it.call("r", 7, -2) == 1

    def test_division_by_zero_faults(self):
        it = interp("int64_t q(int64_t a, int64_t b) { return a / b; }\n")
        with pytest.raises(CInterpError) as ei:
            it.call("q", 1, 0)
        assert ei.value.kind == "div-by-zero"

    def test_uint64_multiplication_wraps(self):
        it = interp(
            """\
            int64_t f(int64_t x) {
              return (int64_t)(((uint64_t)(x) * UINT64_C(6148914691236517206)) >> 1);
            }
            """
        )
        x = 123456789
        want = ((x * 6148914691236517206) & ((1 << 64) - 1)) >> 1
        if want >= 1 << 63:
            want -= 1 << 64
        assert it.call("f", x) == want

    def test_loops_accumulate(self):
        it = interp(
            """\
            int64_t tri(int64_t n) {
              int64_t s = 0;
              int64_t i;
              for (i = 0; i < n; ++i) {
                s += i;
              }
              return s;
            }
            """
        )
        assert it.call("tri", 100) == 4950


class TestMacros:
    def test_function_macro_expansion(self):
        it = interp(
            """\
            #define TWICE(x) ((x) + (x))
            int64_t f(int64_t a) { return TWICE(a + 1); }
            """
        )
        assert it.call("f", 5) == 12
        assert "TWICE" in it.macros
        assert it.macros["TWICE"].raw.startswith("#define TWICE")

    def test_object_macro_expansion(self):
        it = interp(
            """\
            #define K INT64_C(42)
            int64_t f(int64_t a) { return a + K; }
            """
        )
        assert it.call("f", 1) == 43

    def test_preprocess_rejects_unknown_directive(self):
        with pytest.raises(CParseError):
            preprocess("#pragma once\nint64_t f(int64_t a) { return a; }\n")

    def test_includes_are_ignored(self):
        tokens, macros = preprocess(
            "#include <stdint.h>\n#define Z 1\nint64_t x;\n"
        )
        assert "Z" in macros and "int64_t" in tokens


class TestMemoryFaults:
    def test_out_of_bounds_store(self):
        it = interp(
            """\
            int64_t f(char *buf) {
              int64_t *V = (int64_t *) buf;
              V[4] = V[0];
              return 0;
            }
            """
        )
        buf = it.new_buffer(4)
        with pytest.raises(CMemoryFault) as ei:
            it.call("f", buf)
        assert ei.value.kind == "oob"

    def test_out_of_bounds_load(self):
        it = interp(
            """\
            int64_t f(char *buf, int64_t i) {
              int64_t *V = (int64_t *) buf;
              return V[i];
            }
            """
        )
        buf = it.new_buffer(4)
        assert it.call("f", buf, 3) == 3
        with pytest.raises(CMemoryFault) as ei:
            it.call("f", buf, -1)
        assert ei.value.kind == "oob"

    def test_undef_read(self):
        it = interp(
            """\
            int64_t f(char *buf) {
              int64_t *V = (int64_t *) buf;
              return V[1];
            }
            """
        )
        buf = it.new_buffer(4, init="undef")
        with pytest.raises(CMemoryFault) as ei:
            it.call("f", buf)
        assert ei.value.kind == "undef-read"

    def test_use_after_free(self):
        it = interp(
            """\
            int64_t f(int64_t n) {
              int64_t *t = (int64_t *) malloc((size_t)n * sizeof(int64_t));
              if (!t) return 1;
              t[0] = 7;
              free(t);
              return t[0];
            }
            """
        )
        with pytest.raises(CMemoryFault) as ei:
            it.call("f", 4)
        assert ei.value.kind == "use-after-free"

    def test_double_free(self):
        it = interp(
            """\
            int64_t f(int64_t n) {
              int64_t *t = (int64_t *) malloc((size_t)n * sizeof(int64_t));
              if (!t) return 1;
              free(t);
              free(t);
              return 0;
            }
            """
        )
        with pytest.raises(CMemoryFault) as ei:
            it.call("f", 4)
        assert ei.value.kind == "double-free"

    def test_leak_detected_at_return(self):
        it = interp(
            """\
            int64_t f(int64_t n) {
              int64_t *t = (int64_t *) malloc((size_t)n * sizeof(int64_t));
              if (!t) return 1;
              t[0] = 0;
              return 0;
            }
            """
        )
        with pytest.raises(CMemoryFault) as ei:
            it.call("f", 4)
        assert ei.value.kind == "leak"

    def test_balanced_malloc_free_is_clean(self):
        it = interp(
            """\
            int64_t f(int64_t n) {
              int64_t i;
              int64_t s = 0;
              int64_t *t = (int64_t *) malloc((size_t)n * sizeof(int64_t));
              if (!t) return 1;
              for (i = 0; i < n; ++i) t[i] = i;
              for (i = 0; i < n; ++i) s += t[i];
              free(t);
              return s;
            }
            """
        )
        assert it.call("f", 10) == 45

    def test_memcpy_overlap_faults_memmove_does_not(self):
        src = """\
        int64_t f(char *buf) {{
          int64_t *V = (int64_t *) buf;
          {fn}(V + 1, V, (size_t)3 * sizeof(int64_t));
          return 0;
        }}
        """
        it = interp(src.format(fn="memcpy"))
        with pytest.raises(CMemoryFault) as ei:
            it.call("f", it.new_buffer(8))
        assert ei.value.kind == "overlap"

        it = interp(src.format(fn="memmove"))
        buf = it.new_buffer(8)
        assert it.call("f", buf) == 0
        assert buf.values() == [0, 0, 1, 2, 4, 5, 6, 7]


class TestBudget:
    def test_runaway_loop_hits_budget(self):
        it = interp(
            """\
            int64_t f(int64_t n) {
              int64_t i;
              int64_t s = 0;
              for (i = 0; i < n; ++i) s += 1;
              return s;
            }
            """,
            budget=100,
        )
        with pytest.raises(CBudgetExceeded):
            it.call("f", 1_000_000)
        # per-call override lifts the default
        assert it.call("f", 1000, budget=10_000) == 1000

    def test_budget_resets_between_calls(self):
        it = interp(
            """\
            int64_t f(int64_t n) {
              int64_t i;
              int64_t s = 0;
              for (i = 0; i < n; ++i) s += 1;
              return s;
            }
            """,
            budget=150,
        )
        assert it.call("f", 100) == 100
        assert it.call("f", 100) == 100


class TestBuffersAndFootprints:
    def test_identity_seed_and_values(self):
        it = interp("int64_t f(char *b) { return 0; }\n")
        buf = it.new_buffer(5)
        assert buf.values() == [0, 1, 2, 3, 4]
        undef = it.new_buffer(3, init="undef")
        assert undef.values() == [None, None, None]

    def test_read_write_footprints_are_per_call(self):
        it = interp(
            """\
            int64_t f(char *buf, int64_t i, int64_t j) {
              int64_t *V = (int64_t *) buf;
              V[j] = V[i];
              return 0;
            }
            """
        )
        buf = it.new_buffer(8)
        it.call("f", buf, 2, 5)
        assert it.reads == {2}
        assert it.writes == {5}
        it.call("f", buf, 0, 1)
        assert it.reads == {0}
        assert it.writes == {1}

    def test_unknown_function_is_a_link_error(self):
        it = interp("int64_t f(int64_t a) { return a; }\n")
        with pytest.raises(CInterpError) as ei:
            it.call("nope")
        assert ei.value.kind == "link"
        with pytest.raises(CInterpError) as ei:
            it.call("f")
        assert ei.value.kind == "link"
