"""The ``repro analyze`` driver and CLI subcommand."""

from __future__ import annotations

import json

from repro.analysis.driver import analyze
from repro.cli import main


class TestAnalyzeDriver:
    def test_report_structure_and_ok(self):
        report = analyze(8, 8, thread_counts=(1, 3))
        assert report["ok"] is True
        assert report["lattice"]["shapes"] == 64
        assert report["lattice"]["ok"] is True
        # 64 shapes x 2 thread counts x 2 algorithms
        assert report["racecheck"]["schedules"] == 256
        assert report["racecheck"]["ok"] is True
        assert report["lint"]["ok"] is True
        assert "sanitizer" in report
        assert report["seconds"] > 0

    def test_report_is_json_serializable(self):
        report = analyze(4, 4, thread_counts=(2,), run_lint=False)
        parsed = json.loads(json.dumps(report))
        assert parsed["ok"] is True
        assert "lint" not in parsed

    def test_lint_failure_flips_ok(self, tmp_path):
        bad = tmp_path / "parallel"
        bad.mkdir()
        (bad / "cpu.py").write_text("x = a % b\n", encoding="utf-8")
        report = analyze(2, 2, thread_counts=(1,), lint_root=tmp_path)
        assert report["lint"]["ok"] is False
        assert report["ok"] is False


class TestAnalyzeCommand:
    def test_cli_writes_report_and_exits_zero(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        code = main(
            ["analyze", "--m-max", "6", "--n-max", "6", "--threads", "1,2",
             "--output", str(out)]
        )
        assert code == 0
        report = json.loads(out.read_text())
        assert report["ok"] is True
        assert report["lattice"]["shapes"] == 36
        text = capsys.readouterr().out
        assert "ok" in text and "wrote" in text

    def test_cli_no_lint_flag(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        assert main(
            ["analyze", "--m-max", "3", "--n-max", "3", "--threads", "1",
             "--no-lint", "--output", str(out)]
        ) == 0
        assert "lint" not in json.loads(out.read_text())

    def test_cli_rejects_bad_thread_list(self, capsys):
        assert main(["analyze", "--threads", "two"]) == 1
        assert "error" in capsys.readouterr().out
