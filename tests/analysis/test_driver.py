"""The ``repro analyze`` driver and CLI subcommand."""

from __future__ import annotations

import json

import pytest

from repro.analysis.driver import analyze
from repro.cli import main


class TestAnalyzeDriver:
    def test_report_structure_and_ok(self):
        report = analyze(8, 8, thread_counts=(1, 3))
        assert report["ok"] is True
        assert report["lattice"]["shapes"] == 64
        assert report["lattice"]["ok"] is True
        # 64 shapes x 2 thread counts x 2 algorithms x 4 schedule kinds
        # (thread, mp, and one banded per default band count (2, 3))
        assert report["racecheck"]["schedules"] == 1024
        assert report["racecheck"]["ok"] is True
        assert report["racecheck"]["band_counts"] == [2, 3]
        assert report["lint"]["ok"] is True
        assert "sanitizer" in report
        assert report["seconds"] > 0

    def test_band_counts_are_configurable(self):
        report = analyze(4, 4, thread_counts=(2,), band_counts=(2,),
                         run_lint=False)
        # 16 shapes x 1 thread count x 2 algorithms x 3 schedule kinds
        assert report["racecheck"]["schedules"] == 96
        assert report["racecheck"]["band_counts"] == [2]

    def test_native_section_via_kernelcheck(self):
        report = analyze(
            0, 0, run_lint=False, native=True,
            native_configs=[(6, 4, "C", 4)],
        )
        assert report["lattice"]["shapes"] == 0
        assert report["racecheck"]["schedules"] == 0
        kc = report["kernelcheck"]
        assert kc["ok"] is True
        assert kc["kernels"] == 2  # c2r and r2c
        assert report["ok"] is True

    def test_mutation_section(self):
        report = analyze(
            0, 0, run_lint=False, native=True,
            native_configs=[(6, 4, "C", 4)], mutation=True,
        )
        mu = report["mutation"]
        assert mu["ok"] is True
        assert mu["killed"] == mu["applied"]
        assert len(mu["classes_applied"]) >= mu["min_classes"]
        assert report["ok"] is True

    def test_report_is_json_serializable(self):
        report = analyze(4, 4, thread_counts=(2,), run_lint=False)
        parsed = json.loads(json.dumps(report))
        assert parsed["ok"] is True
        assert "lint" not in parsed

    def test_lint_failure_flips_ok(self, tmp_path):
        bad = tmp_path / "parallel"
        bad.mkdir()
        (bad / "cpu.py").write_text("x = a % b\n", encoding="utf-8")
        report = analyze(2, 2, thread_counts=(1,), lint_root=tmp_path)
        assert report["lint"]["ok"] is False
        assert report["ok"] is False


class TestAnalyzeCommand:
    def test_cli_writes_report_and_exits_zero(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        code = main(
            ["analyze", "--m-max", "6", "--n-max", "6", "--threads", "1,2",
             "--output", str(out)]
        )
        assert code == 0
        report = json.loads(out.read_text())
        assert report["ok"] is True
        assert report["lattice"]["shapes"] == 36
        text = capsys.readouterr().out
        assert "ok" in text and "wrote" in text

    def test_cli_no_lint_flag(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        assert main(
            ["analyze", "--m-max", "3", "--n-max", "3", "--threads", "1",
             "--no-lint", "--output", str(out)]
        ) == 0
        assert "lint" not in json.loads(out.read_text())

    def test_cli_rejects_bad_thread_list(self, capsys):
        assert main(["analyze", "--threads", "two"]) == 1
        assert "error" in capsys.readouterr().out

    def test_cli_native_shapes_runs_kernelcheck(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        code = main(
            ["analyze", "--m-max", "0", "--n-max", "0", "--no-lint",
             "--native-shapes", "6x4:C:4", "--output", str(out)]
        )
        assert code == 0
        report = json.loads(out.read_text())
        assert report["kernelcheck"]["ok"] is True
        assert report["kernelcheck"]["kernels"] == 2
        text = capsys.readouterr().out
        assert "kernelcheck: 2 kernels" in text

    @pytest.mark.parametrize(
        "token", ["6by4", "6x4:Z", "6x4:C:wide", "x", "6x4x2"]
    )
    def test_cli_rejects_bad_native_shape_tokens(self, token, capsys):
        assert main(["analyze", "--native-shapes", token]) == 1
        assert "error" in capsys.readouterr().out

    def test_cli_prints_kernelcheck_failures(self, tmp_path, capsys,
                                             monkeypatch):
        from repro.analysis import kernelcheck as kc
        from repro.analysis.algebra import Check
        from repro.analysis.kernelcheck import KernelReport, NativeReport

        def fake_verify(configs, progress=None):
            rep = KernelReport(m=6, n=4, order="C", algorithm="c2r",
                               itemsize=4)
            rep.checks.append(Check("plan-constants", False, "B != 2"))
            return NativeReport(kernels=[rep])

        monkeypatch.setattr(kc, "verify_native", fake_verify)
        code = main(
            ["analyze", "--m-max", "0", "--n-max", "0", "--no-lint",
             "--native-shapes", "6x4:C:4"]
        )
        assert code == 1
        text = capsys.readouterr().out
        assert "1 failed" in text
        assert "6x4 C c2r: plan-constants: B != 2" in text
