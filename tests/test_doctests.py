"""Run the doctest examples embedded in public docstrings.

Documentation that executes is documentation that stays true; this collects
the modules whose docstrings carry ``>>>`` examples.
"""

from __future__ import annotations

import doctest
import importlib

import pytest

# import_module (not attribute access): several submodule names are shadowed
# by same-named functions re-exported in their package __init__.
MODULE_NAMES = [
    "repro.core.transpose",
    "repro.core.tensor",
    "repro.parallel.partition",
    "repro.strength.fastdiv",
    "repro.validation",
]


@pytest.mark.parametrize("name", MODULE_NAMES)
def test_module_doctests(name):
    module = importlib.import_module(name)
    result = doctest.testmod(module, verbose=False)
    assert result.attempted > 0, f"{name} has no doctest examples"
    assert result.failed == 0
