"""Differential fuzzing: every transposer must agree on every input.

Nine independently-implemented in-place transposition paths (the blocked
kernels in three variants, the strict kernels, cache-aware, parallel,
skinny, tiled baselines, cycle following) are run on hypothesis-generated
inputs and compared element-for-element — a single disagreement would mean
one of them is wrong.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aos.skinny import skinny_transpose
from repro.baselines import (
    gustavson_transpose,
    sung_transpose,
    transpose_cycle_following,
)
from repro.cache import c2r_cache_aware
from repro.core import c2r_transpose, transpose_inplace
from repro.parallel import parallel_transpose_inplace

TRANSPOSERS = {
    "auto": lambda b, m, n: transpose_inplace(b, m, n),
    "c2r/gather/blocked": lambda b, m, n: c2r_transpose(b, m, n),
    "c2r/scatter/strict": lambda b, m, n: c2r_transpose(
        b, m, n, variant="scatter", aux="strict"
    ),
    "c2r/restricted/blocked": lambda b, m, n: c2r_transpose(
        b, m, n, variant="restricted"
    ),
    "cache-aware": lambda b, m, n: c2r_cache_aware(b, m, n),
    "parallel-3t": lambda b, m, n: parallel_transpose_inplace(b, m, n, n_threads=3),
    "skinny": skinny_transpose,
    "cycle-following": lambda b, m, n: transpose_cycle_following(b, m, n),
    "gustavson": lambda b, m, n: gustavson_transpose(b, m, n),
    "sung": lambda b, m, n: sung_transpose(b, m, n),
}

dims = st.integers(1, 40)


@given(dims, dims, st.integers(0, 2**32 - 1))
@settings(max_examples=40, deadline=None)
def test_all_transposers_agree(m, n, seed):
    A = np.random.default_rng(seed).integers(0, 2**30, size=m * n)
    expected = A.reshape(m, n).T.copy().ravel()
    for name, fn in TRANSPOSERS.items():
        buf = A.copy()
        fn(buf, m, n)
        np.testing.assert_array_equal(buf, expected, err_msg=name)


@given(dims, dims)
@settings(max_examples=30, deadline=None)
def test_all_transposers_are_involutions_with_swap(m, n):
    """Transposing m x n then n x m restores the buffer, for every path."""
    A = np.arange(m * n, dtype=np.int64)
    for name, fn in TRANSPOSERS.items():
        buf = A.copy()
        fn(buf, m, n)
        fn(buf, n, m)
        np.testing.assert_array_equal(buf, A, err_msg=name)


@given(st.integers(1, 12), st.integers(0, 2**32 - 1))
@settings(max_examples=20, deadline=None)
def test_square_matrices(k, seed):
    """Square shapes (a = b = 1 special structure) across all paths."""
    A = np.random.default_rng(seed).integers(0, 100, size=k * k)
    expected = A.reshape(k, k).T.copy().ravel()
    for name, fn in TRANSPOSERS.items():
        buf = A.copy()
        fn(buf, k, k)
        np.testing.assert_array_equal(buf, expected, err_msg=name)
