"""Tests for the classical cycle-following baseline and its work profile."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import CycleStats, mkl_like_transpose, transpose_cycle_following
from repro.baselines.cycle_following import successor

from ..conftest import dim_pairs


class TestSuccessorMap:
    @given(dim_pairs)
    def test_successor_is_transpose_destination(self, mn):
        """P(l) is where element l of the row-major buffer lands in the
        transposed row-major buffer."""
        m, n = mn
        A = np.arange(m * n).reshape(m, n)
        T = A.T.copy().ravel()
        flat = A.ravel()
        for l in range(m * n):
            assert T[successor(l, m, n)] == flat[l]

    @given(dim_pairs)
    def test_endpoints_fixed(self, mn):
        m, n = mn
        assert successor(0, m, n) == 0
        assert successor(m * n - 1, m, n) == m * n - 1


class TestCycleFollowing:
    @given(dim_pairs, st.sampled_from(["bitset", "recompute"]))
    @settings(max_examples=60, deadline=None)
    def test_transposes(self, mn, aux):
        m, n = mn
        A = np.arange(m * n, dtype=np.int64).reshape(m, n)
        buf = A.ravel().copy()
        transpose_cycle_following(buf, m, n, aux=aux)
        np.testing.assert_array_equal(buf.reshape(n, m), A.T)

    @given(dim_pairs)
    @settings(max_examples=40, deadline=None)
    def test_variants_agree(self, mn):
        m, n = mn
        A = np.arange(m * n, dtype=np.int64)
        b1, b2 = A.copy(), A.copy()
        transpose_cycle_following(b1, m, n, aux="bitset")
        transpose_cycle_following(b2, m, n, aux="recompute")
        np.testing.assert_array_equal(b1, b2)

    def test_vector_shapes_are_noops(self):
        buf = np.arange(7.0)
        out = transpose_cycle_following(buf.copy(), 1, 7)
        np.testing.assert_array_equal(out, buf)
        out = transpose_cycle_following(buf.copy(), 7, 1)
        np.testing.assert_array_equal(out, buf)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            transpose_cycle_following(np.zeros(6), 2, 3, aux="psychic")
        with pytest.raises(ValueError):
            transpose_cycle_following(np.zeros(5), 2, 3)

    @given(dim_pairs)
    @settings(max_examples=30, deadline=None)
    def test_bitset_work_is_linear(self, mn):
        """With O(mn) aux bits, total work is O(mn): each element is moved
        once and its successor evaluated a constant number of times."""
        m, n = mn
        stats = CycleStats()
        transpose_cycle_following(
            np.arange(m * n, dtype=np.int64), m, n, aux="bitset", stats=stats
        )
        assert stats.element_moves <= m * n
        assert stats.successor_evals <= 3 * m * n + 2

    @given(dim_pairs)
    @settings(max_examples=30, deadline=None)
    def test_recompute_work_exceeds_bitset(self, mn):
        """The limited-aux variant performs strictly more successor walks
        whenever a nontrivial cycle structure exists."""
        m, n = mn
        s_bit, s_rec = CycleStats(), CycleStats()
        A = np.arange(m * n, dtype=np.int64)
        transpose_cycle_following(A.copy(), m, n, aux="bitset", stats=s_bit)
        transpose_cycle_following(A.copy(), m, n, aux="recompute", stats=s_rec)
        assert s_rec.successor_evals >= s_bit.element_moves
        assert s_rec.element_moves == s_bit.element_moves  # same data movement

    def test_superlinear_growth_of_recompute(self):
        """Doubling the array size grows recompute work superlinearly on
        shapes with long cycles (the O(mn log mn) profile)."""
        def work(m, n):
            s = CycleStats()
            transpose_cycle_following(
                np.arange(m * n, dtype=np.int64), m, n, aux="recompute", stats=s
            )
            return s.successor_evals

        w1 = work(31, 37)
        w2 = work(62, 37)
        # superlinear: more than 2x the work for 2x the elements
        assert w2 > 2 * w1


class TestMklLike:
    @given(dim_pairs)
    @settings(max_examples=40, deadline=None)
    def test_transposes(self, mn):
        m, n = mn
        A = np.arange(m * n, dtype=np.float64).reshape(m, n)
        buf = A.ravel().copy()
        mkl_like_transpose(buf, m, n)
        np.testing.assert_array_equal(buf.reshape(n, m), A.T)

    def test_stats_passthrough(self):
        stats = CycleStats()
        mkl_like_transpose(np.arange(12.0), 3, 4, stats=stats)
        assert stats.total_work > 0
