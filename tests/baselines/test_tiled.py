"""Tests for the tiled engine, Gustavson and Sung baselines."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    SungPlan,
    TiledLayout,
    gustavson_transpose,
    outofplace_transpose,
    sung_tile_heuristic,
    sung_transpose,
    tiled_transpose_inplace,
    tretyakov_access_bound,
)
from repro.baselines.gustavson import best_tile
from repro.baselines.tiling import TileStats, pack, unpack


def tiled_shapes():
    """Shapes with a random valid tile choice."""
    return st.tuples(
        st.integers(1, 12), st.integers(1, 6), st.integers(1, 12), st.integers(1, 6)
    ).map(lambda t: (t[0] * t[1], t[2] * t[3], t[1], t[3]))


class TestTiledLayout:
    def test_validates_divisibility(self):
        with pytest.raises(ValueError):
            TiledLayout(10, 10, 3, 2)
        with pytest.raises(ValueError):
            TiledLayout(10, 10, 2, 3)
        with pytest.raises(ValueError):
            TiledLayout(0, 10, 1, 1)

    def test_grid_arithmetic(self):
        lay = TiledLayout(12, 8, 3, 4)
        assert lay.grid_rows == 4
        assert lay.grid_cols == 2
        assert lay.n_tiles == 8
        assert lay.tile_elems == 12


class TestPackUnpack:
    @given(tiled_shapes())
    @settings(max_examples=60)
    def test_roundtrip(self, shape):
        m, tr, n, tc = shape[0], shape[2], shape[1], shape[3]
        lay = TiledLayout(m, n, tr, tc)
        buf = np.arange(m * n, dtype=np.int64)
        orig = buf.copy()
        pack(buf, lay)
        unpack(buf, lay)
        np.testing.assert_array_equal(buf, orig)

    def test_pack_makes_tiles_contiguous(self):
        m, n, tr, tc = 4, 6, 2, 3
        lay = TiledLayout(m, n, tr, tc)
        buf = np.arange(m * n, dtype=np.int64)
        A = buf.reshape(m, n).copy()
        pack(buf, lay)
        # tile (I, J) occupies segment I*gridcols + J
        for I in range(lay.grid_rows):
            for J in range(lay.grid_cols):
                seg = (I * lay.grid_cols + J) * lay.tile_elems
                tile = buf[seg : seg + lay.tile_elems].reshape(tr, tc)
                np.testing.assert_array_equal(
                    tile, A[I * tr : (I + 1) * tr, J * tc : (J + 1) * tc]
                )


class TestTiledTranspose:
    @given(tiled_shapes())
    @settings(max_examples=80, deadline=None)
    def test_transposes(self, shape):
        m, n, tr, tc = shape
        A = np.arange(m * n, dtype=np.int64).reshape(m, n)
        buf = A.ravel().copy()
        tiled_transpose_inplace(buf, m, n, tr, tc)
        np.testing.assert_array_equal(buf.reshape(n, m), A.T)

    def test_single_tile(self):
        A = np.arange(12, dtype=np.int64).reshape(3, 4)
        buf = A.ravel().copy()
        tiled_transpose_inplace(buf, 3, 4, 3, 4)
        np.testing.assert_array_equal(buf.reshape(4, 3), A.T)

    def test_unit_tiles(self):
        A = np.arange(12, dtype=np.int64).reshape(3, 4)
        buf = A.ravel().copy()
        tiled_transpose_inplace(buf, 3, 4, 1, 1)
        np.testing.assert_array_equal(buf.reshape(4, 3), A.T)

    def test_stats_count_every_tile(self):
        stats = TileStats()
        m, n, tr, tc = 12, 8, 3, 4
        tiled_transpose_inplace(
            np.arange(m * n, dtype=np.int64), m, n, tr, tc, stats=stats
        )
        assert stats.tiles_moved == (m // tr) * (n // tc)
        assert stats.panels_packed == m // tr + n // tc

    def test_buffer_validated(self):
        with pytest.raises(ValueError):
            tiled_transpose_inplace(np.zeros(10), 3, 4, 1, 1)


class TestGustavson:
    @given(st.integers(1, 40), st.integers(1, 40))
    @settings(max_examples=60, deadline=None)
    def test_transposes_any_shape(self, m, n):
        A = np.arange(m * n, dtype=np.float64).reshape(m, n)
        buf = A.ravel().copy()
        gustavson_transpose(buf, m, n)
        np.testing.assert_array_equal(buf.reshape(n, m), A.T)

    def test_best_tile_properties(self):
        assert best_tile(64) == 64
        assert best_tile(128) == 64
        assert best_tile(97) == 1          # prime beyond bound
        assert best_tile(60, bound=7) == 6
        with pytest.raises(ValueError):
            best_tile(0)

    @given(st.integers(1, 3000))
    def test_best_tile_divides(self, dim):
        t = best_tile(dim)
        assert dim % t == 0 and 1 <= t <= 64


class TestSung:
    @pytest.mark.parametrize(
        "dim,tile",
        [(7200, 32), (1800, 72), (7223, 31), (10368, 64)],
    )
    def test_heuristic_reproduces_paper_examples(self, dim, tile):
        """Section 5.2 reports these exact tile choices."""
        assert sung_tile_heuristic(dim) == tile

    @given(st.integers(1, 10**6))
    def test_heuristic_returns_divisor_within_threshold(self, dim):
        t = sung_tile_heuristic(dim)
        assert dim % t == 0
        assert t <= 72 or dim == t  # only exceeds when dim itself is 1

    @given(st.integers(1, 40), st.integers(1, 40))
    @settings(max_examples=50, deadline=None)
    def test_transposes(self, m, n):
        A = np.arange(m * n, dtype=np.float64).reshape(m, n)
        buf = A.ravel().copy()
        plan = sung_transpose(buf, m, n)
        np.testing.assert_array_equal(buf.reshape(n, m), A.T)
        assert isinstance(plan, SungPlan)

    def test_degenerate_detection(self):
        assert SungPlan.plan(10007, 4096).degenerate       # prime m
        assert not SungPlan.plan(7200, 1800).degenerate


class TestOutOfPlaceAndTretyakov:
    @given(st.integers(1, 30), st.integers(1, 30))
    def test_outofplace(self, m, n):
        A = np.arange(m * n, dtype=np.float64).reshape(m, n)
        out = outofplace_transpose(A.ravel().copy(), m, n)
        np.testing.assert_array_equal(out.reshape(n, m), A.T)

    def test_outofplace_validates(self):
        with pytest.raises(ValueError):
            outofplace_transpose(np.zeros(5), 2, 3)

    def test_tretyakov_bound_is_8x_decomposition(self):
        """48 accesses/element vs the decomposition's 6 (Theorem 6)."""
        assert tretyakov_access_bound(10, 20) == 48 * 200
        assert tretyakov_access_bound(10, 20) == 8 * (6 * 200)

    def test_tretyakov_validates(self):
        with pytest.raises(ValueError):
            tretyakov_access_bound(0, 5)
