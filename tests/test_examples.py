"""Smoke-run every example script — the documentation must execute.

Each example self-verifies (asserts against references), so exit code 0
means the demonstrated workflow actually works.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    env = dict(os.environ)
    src = str(Path(__file__).parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert proc.stdout.strip(), "examples must narrate what they do"


def test_every_example_is_documented_in_readme():
    readme = (Path(__file__).parent.parent / "README.md").read_text()
    for script in EXAMPLES:
        assert script.name in readme, f"{script.name} missing from README"
