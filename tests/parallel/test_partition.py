"""Edge-case and property tests for the static partitioner.

The race-freedom proof in ``repro.analysis.racecheck`` leans on
``balanced_chunks`` tiling ``range(total)`` exactly — these tests pin that
contract down directly, including the degenerate inputs the parallel passes
can produce (empty matrices, more workers than rows).
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.parallel.partition import balanced_chunks


class TestEdgeCases:
    def test_zero_total_returns_no_chunks(self):
        assert balanced_chunks(0, 1) == []
        assert balanced_chunks(0, 8) == []

    def test_more_parts_than_total_caps_at_total(self):
        chunks = balanced_chunks(3, 8)
        assert len(chunks) == 3
        assert [(c.start, c.stop) for c in chunks] == [(0, 1), (1, 2), (2, 3)]

    def test_single_part_covers_everything(self):
        assert balanced_chunks(10, 1) == [slice(0, 10)]

    def test_exact_division(self):
        chunks = balanced_chunks(12, 4)
        assert [(c.stop - c.start) for c in chunks] == [3, 3, 3, 3]

    def test_negative_total_rejected(self):
        with pytest.raises(ValueError):
            balanced_chunks(-1, 2)

    def test_non_positive_parts_rejected(self):
        with pytest.raises(ValueError):
            balanced_chunks(10, 0)
        with pytest.raises(ValueError):
            balanced_chunks(10, -3)


@given(total=st.integers(0, 10_000), parts=st.integers(1, 64))
def test_chunks_tile_range_exactly(total, parts):
    """Chunks are contiguous, non-empty, balanced, and tile range(total)."""
    chunks = balanced_chunks(total, parts)
    assert len(chunks) <= parts
    prev_stop = 0
    sizes = []
    for c in chunks:
        assert c.start == prev_stop, "chunks must be contiguous"
        assert c.stop > c.start, "empty chunks must never be returned"
        sizes.append(c.stop - c.start)
        prev_stop = c.stop
    assert prev_stop == total, "chunks must cover range(total) exactly"
    if sizes:
        assert max(sizes) - min(sizes) <= 1, "sizes may differ by at most one"


@given(total=st.integers(1, 10_000), parts=st.integers(1, 64))
def test_every_index_in_exactly_one_chunk(total, parts):
    chunks = balanced_chunks(total, parts)
    seen = sorted(i for c in chunks for i in range(c.start, c.stop))
    assert seen == list(range(total))
