"""Tests for the multiprocess shared-memory backend (repro.parallel.mp)."""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core import transpose_inplace
from repro.core.batched import BatchedTransposePlan
from repro.core.plan import TransposePlan
from repro.parallel import ParallelTranspose, PassExecutionError
from repro.parallel.mp import MpExecutor, _pass_chunk_task
from repro.parallel.shm import SharedArray, owned_segments

from ..conftest import dim_pairs

#: the dtype lattice the serving layer actually sees (narrow image tiles
#: through double precision)
DTYPES = [np.uint8, np.int32, np.float32, np.float64]

SHAPES = [(7, 13), (12, 12), (24, 18), (1, 17), (48, 36)]


@pytest.fixture(scope="module")
def mp_pt():
    """One persistent mp transposer: the process pool is far too expensive
    to spin up per test case."""
    with ParallelTranspose(2, backend="mp") as pt:
        yield pt


def _reference(m: int, n: int, order: str, dtype) -> tuple[np.ndarray, np.ndarray]:
    A = np.arange(m * n, dtype=dtype).reshape(m, n)
    buf = np.ascontiguousarray(A.ravel(order=order))
    ref = np.ascontiguousarray(A.T.ravel(order=order))
    return buf, ref


class TestMpDifferential:
    """backend="mp" must be byte-identical to the sequential kernel."""

    @given(dim_pairs)
    @settings(max_examples=15, deadline=None)
    def test_matches_sequential(self, mp_pt, mn):
        m, n = mn
        buf, ref = _reference(m, n, "C", np.float64)
        mp_pt.transpose_inplace(buf, m, n)
        np.testing.assert_array_equal(buf, ref)

    @pytest.mark.parametrize("dtype", DTYPES)
    @pytest.mark.parametrize("order", ["C", "F"])
    @pytest.mark.parametrize("shape", SHAPES)
    def test_dtype_order_lattice_byte_identical(self, mp_pt, shape, order, dtype):
        m, n = shape
        buf, ref = _reference(m, n, order, dtype)
        mp_pt.transpose_inplace(buf, m, n, order)
        assert buf.tobytes() == ref.tobytes()

    def test_c2r_matches_sequential_kernel(self, mp_pt):
        m, n = 24, 18  # gcd > 1: exercises the rotation passes too
        A = np.arange(m * n, dtype=np.float64)
        got = A.copy()
        mp_pt.c2r(got, m, n)
        ref = A.copy()
        transpose_inplace(ref, m, n, algorithm="c2r")
        np.testing.assert_array_equal(got, ref)

    def test_r2c_inverts_c2r(self, mp_pt):
        m, n = 15, 10
        A = np.arange(m * n, dtype=np.float64)
        buf = A.copy()
        mp_pt.c2r(buf, m, n)
        mp_pt.r2c(buf, m, n)
        np.testing.assert_array_equal(buf, A)

    def test_no_segments_leaked(self, mp_pt):
        buf, ref = _reference(31, 22, "C", np.float64)
        mp_pt.transpose_inplace(buf, 31, 22)
        np.testing.assert_array_equal(buf, ref)
        assert owned_segments() == []

    def test_buffer_validated(self, mp_pt):
        with pytest.raises(ValueError):
            mp_pt.c2r(np.zeros(5), 2, 3)
        with pytest.raises(ValueError):
            mp_pt.r2c(np.zeros(12)[::2], 2, 3)  # non-contiguous view
        with pytest.raises(ValueError):
            mp_pt.transpose_inplace(np.zeros(6), 2, 3, "Z")
        assert owned_segments() == []


class TestMpExecutorFailure:
    def test_chunk_failure_raises_pass_execution_error(self, mp_pt):
        """A task failing in a worker surfaces as PassExecutionError with
        the pass name and chunk, exactly like the thread executor."""
        ex: MpExecutor = mp_pt._mp.executor
        seg = SharedArray((4, 6), np.float64)
        try:
            tasks = [
                (slice(0, 2), (seg.name, 4, 6, seg.dtype.str, "bogus", 0, 2, True)),
                (slice(2, 4), (seg.name, 4, 6, seg.dtype.str, "bogus", 2, 4, True)),
            ]
            with pytest.raises(PassExecutionError) as ei:
                ex.run_chunks("bogus", _pass_chunk_task, tasks)
        finally:
            seg.destroy()
        err = ei.value
        assert err.pass_name == "bogus"
        assert isinstance(err.__cause__, ValueError)
        assert "bogus" in str(err)
        assert owned_segments() == []

    def test_failed_transpose_destroys_segment(self, mp_pt, monkeypatch):
        """A pass failure mid-schedule must still unlink the staging
        segment (the finally path) and leave the input buffer as it was."""
        mp = mp_pt._mp

        def boom(seg, dec, name, total):
            raise PassExecutionError(name, slice(0, 1), ValueError("boom"))

        monkeypatch.setattr(mp, "_run_pass", boom)
        buf = np.arange(6.0)
        snapshot = buf.copy()
        with pytest.raises(PassExecutionError):
            mp.c2r(buf, 2, 3)
        np.testing.assert_array_equal(buf, snapshot)
        assert owned_segments() == []


class TestPlanPickle:
    """Plans cross the process boundary by identity, not by payload."""

    @pytest.mark.parametrize("cls", [TransposePlan, BatchedTransposePlan])
    def test_reduce_ships_identity_not_maps(self, cls):
        plan = cls(48, 36, "C", "auto")
        blob = pickle.dumps(plan)
        # The O(mn) gather maps would be tens of kilobytes; the identity
        # tuple pickles in well under one.
        assert len(blob) < 512

    def test_unpickled_plan_behaves_identically(self):
        m, n = 24, 18
        plan = TransposePlan(m, n, "C", "auto")
        clone = pickle.loads(pickle.dumps(plan))
        a = np.arange(m * n, dtype=np.float64)
        b = a.copy()
        plan.execute(a)
        clone.execute(b)
        np.testing.assert_array_equal(a, b)

    def test_unpickled_batched_plan_behaves_identically(self):
        m, n = 12, 20
        plan = BatchedTransposePlan(m, n, "C", "auto")
        clone = pickle.loads(pickle.dumps(plan))
        a = np.arange(3 * m * n, dtype=np.float64).reshape(3, m * n)
        b = a.copy()
        plan.execute(a)
        clone.execute(b)
        np.testing.assert_array_equal(a, b)
