"""Tests for the cache-aware parallel CPU transpose (the paper's future
work for Section 5.1)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import transpose_inplace
from repro.parallel import CacheAwareParallelTranspose

from ..conftest import dim_pairs

thread_counts = st.sampled_from([1, 2, 4])
lines = st.sampled_from([32, 64, 128])


class TestCacheAwareParallel:
    @given(dim_pairs, thread_counts, lines)
    @settings(max_examples=40, deadline=None)
    def test_c2r_matches_reference(self, mn, threads, line):
        m, n = mn
        A = np.arange(m * n, dtype=np.float64)
        got = A.copy()
        with CacheAwareParallelTranspose(threads, line_bytes=line) as pt:
            pt.c2r(got, m, n)
        ref = A.copy()
        transpose_inplace(ref, m, n, algorithm="c2r")
        np.testing.assert_array_equal(got, ref)

    @given(dim_pairs, thread_counts, st.sampled_from(["C", "F"]))
    @settings(max_examples=40, deadline=None)
    def test_transpose_inplace_end_to_end(self, mn, threads, order):
        m, n = mn
        A = np.arange(m * n, dtype=np.float64).reshape(m, n)
        buf = A.ravel(order=order).copy()
        with CacheAwareParallelTranspose(threads) as pt:
            pt.transpose_inplace(buf, m, n, order)
        np.testing.assert_array_equal(buf, A.T.ravel(order=order))

    def test_medium_matrix(self):
        m, n = 240, 312
        A = np.random.default_rng(0).standard_normal(m * n)
        got = A.copy()
        with CacheAwareParallelTranspose(4) as pt:
            pt.c2r(got, m, n)
        np.testing.assert_array_equal(
            got.reshape(n, m), A.reshape(m, n).T
        )

    def test_float32_line_geometry(self):
        m, n = 96, 130
        A = np.arange(m * n, dtype=np.float32)
        got = A.copy()
        with CacheAwareParallelTranspose(2, line_bytes=64) as pt:
            pt.c2r(got, m, n)
        np.testing.assert_array_equal(got.reshape(n, m), A.reshape(m, n).T)

    def test_validates(self):
        with CacheAwareParallelTranspose(1) as pt:
            with pytest.raises(ValueError):
                pt.c2r(np.zeros(5), 2, 3)
            with pytest.raises(ValueError):
                pt.transpose_inplace(np.zeros(6), 2, 3, "Z")
