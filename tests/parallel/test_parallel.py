"""Tests for the parallel CPU transposition."""

from __future__ import annotations

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import transpose_inplace
from repro.parallel import (
    ParallelExecutor,
    ParallelTranspose,
    balanced_chunks,
    parallel_transpose_inplace,
)

from ..conftest import dim_pairs

thread_counts = st.sampled_from([1, 2, 3, 4, 8])


class TestBalancedChunks:
    @given(st.integers(0, 1000), st.integers(1, 64))
    def test_cover_exactly_once(self, total, parts):
        chunks = balanced_chunks(total, parts)
        seen = []
        for ch in chunks:
            seen.extend(range(ch.start, ch.stop))
        assert seen == list(range(total))

    @given(st.integers(1, 1000), st.integers(1, 64))
    def test_sizes_differ_by_at_most_one(self, total, parts):
        chunks = balanced_chunks(total, parts)
        sizes = [ch.stop - ch.start for ch in chunks]
        assert max(sizes) - min(sizes) <= 1
        assert all(s > 0 for s in sizes)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            balanced_chunks(-1, 2)
        with pytest.raises(ValueError):
            balanced_chunks(5, 0)

    def test_more_parts_than_items(self):
        assert len(balanced_chunks(3, 10)) == 3


class TestExecutor:
    def test_sequential_shortcut(self):
        ex = ParallelExecutor(1)
        out = []
        ex.parallel_for(10, lambda ch: out.extend(range(ch.start, ch.stop)))
        assert out == list(range(10))

    def test_parallel_covers_all(self):
        with ParallelExecutor(4) as ex:
            hits = np.zeros(1000, dtype=np.int64)
            lock = threading.Lock()

            def body(ch: slice) -> None:
                with lock:
                    hits[ch] += 1

            ex.parallel_for(1000, body)
            assert (hits == 1).all()

    def test_worker_exception_propagates(self):
        with ParallelExecutor(2) as ex:
            def body(ch: slice) -> None:
                raise RuntimeError("boom")

            with pytest.raises(RuntimeError, match="boom"):
                ex.parallel_for(10, body)

    def test_rejects_zero_threads(self):
        with pytest.raises(ValueError):
            ParallelExecutor(0)


class TestParallelTranspose:
    @given(dim_pairs, thread_counts)
    @settings(max_examples=40, deadline=None)
    def test_c2r_matches_sequential_kernel(self, mn, threads):
        m, n = mn
        A = np.arange(m * n, dtype=np.float64)
        got = A.copy()
        with ParallelTranspose(threads) as pt:
            pt.c2r(got, m, n)
        ref = A.copy()
        transpose_inplace(ref, m, n, algorithm="c2r")
        np.testing.assert_array_equal(got, ref)

    @given(dim_pairs, thread_counts)
    @settings(max_examples=40, deadline=None)
    def test_r2c_inverts_c2r(self, mn, threads):
        m, n = mn
        A = np.arange(m * n, dtype=np.float64)
        buf = A.copy()
        with ParallelTranspose(threads) as pt:
            pt.c2r(buf, m, n)
            pt.r2c(buf, m, n)
        np.testing.assert_array_equal(buf, A)

    @given(dim_pairs, thread_counts, st.sampled_from(["C", "F"]))
    @settings(max_examples=40, deadline=None)
    def test_transpose_inplace_end_to_end(self, mn, threads, order):
        m, n = mn
        A = np.arange(m * n, dtype=np.float64).reshape(m, n)
        buf = A.ravel(order=order).copy()
        parallel_transpose_inplace(buf, m, n, order, n_threads=threads)
        np.testing.assert_array_equal(buf, A.T.ravel(order=order))

    @given(dim_pairs)
    @settings(max_examples=30, deadline=None)
    def test_strength_reduction_toggle_identical(self, mn):
        m, n = mn
        A = np.arange(m * n, dtype=np.float64)
        with_sr = A.copy()
        without_sr = A.copy()
        with ParallelTranspose(2, strength_reduced=True) as pt:
            pt.c2r(with_sr, m, n)
        with ParallelTranspose(2, strength_reduced=False) as pt:
            pt.c2r(without_sr, m, n)
        np.testing.assert_array_equal(with_sr, without_sr)

    def test_buffer_validated(self):
        with ParallelTranspose(1) as pt:
            with pytest.raises(ValueError):
                pt.c2r(np.zeros(5), 2, 3)
            with pytest.raises(ValueError):
                pt.r2c(np.zeros(5), 2, 3)
            with pytest.raises(ValueError):
                pt.transpose_inplace(np.zeros(6), 2, 3, "Z")

    def test_medium_matrix_many_threads(self):
        rng = np.random.default_rng(7)
        m, n = 173, 240
        A = rng.standard_normal((m, n))
        buf = A.ravel().copy()
        parallel_transpose_inplace(buf, m, n, n_threads=8)
        np.testing.assert_array_equal(buf, A.T.ravel())
