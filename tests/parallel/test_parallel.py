"""Tests for the parallel CPU transposition."""

from __future__ import annotations

import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import transpose_inplace
from repro.parallel import (
    ParallelExecutor,
    ParallelTranspose,
    PassExecutionError,
    balanced_chunks,
    parallel_transpose_inplace,
)

from ..conftest import dim_pairs

thread_counts = st.sampled_from([1, 2, 3, 4, 8])


class TestBalancedChunks:
    @given(st.integers(0, 1000), st.integers(1, 64))
    def test_cover_exactly_once(self, total, parts):
        chunks = balanced_chunks(total, parts)
        seen = []
        for ch in chunks:
            seen.extend(range(ch.start, ch.stop))
        assert seen == list(range(total))

    @given(st.integers(1, 1000), st.integers(1, 64))
    def test_sizes_differ_by_at_most_one(self, total, parts):
        chunks = balanced_chunks(total, parts)
        sizes = [ch.stop - ch.start for ch in chunks]
        assert max(sizes) - min(sizes) <= 1
        assert all(s > 0 for s in sizes)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            balanced_chunks(-1, 2)
        with pytest.raises(ValueError):
            balanced_chunks(5, 0)

    def test_more_parts_than_items(self):
        assert len(balanced_chunks(3, 10)) == 3


class TestExecutor:
    def test_sequential_shortcut(self):
        ex = ParallelExecutor(1)
        out = []
        ex.parallel_for(10, lambda ch: out.extend(range(ch.start, ch.stop)))
        assert out == list(range(10))

    def test_parallel_covers_all(self):
        with ParallelExecutor(4) as ex:
            hits = np.zeros(1000, dtype=np.int64)
            lock = threading.Lock()

            def body(ch: slice) -> None:
                with lock:
                    hits[ch] += 1

            ex.parallel_for(1000, body)
            assert (hits == 1).all()

    def test_worker_exception_propagates(self):
        with ParallelExecutor(2) as ex:
            def body(ch: slice) -> None:
                raise RuntimeError("boom")

            with pytest.raises(RuntimeError, match="boom"):
                ex.parallel_for(10, body)

    def test_rejects_zero_threads(self):
        with pytest.raises(ValueError):
            ParallelExecutor(0)

    def test_chunk_failure_identifies_pass_and_chunk(self):
        """A failing chunk raises PassExecutionError carrying the pass name
        and the exact chunk slice, chained to the original exception."""
        with ParallelExecutor(2) as ex:
            def body(ch: slice) -> None:
                if ch.start == 0:
                    raise ValueError("boom")

            with pytest.raises(PassExecutionError) as ei:
                ex.parallel_for(10, body, name="row_shuffle")
        err = ei.value
        assert err.pass_name == "row_shuffle"
        assert (err.chunk.start, err.chunk.stop) == (0, 5)
        assert isinstance(err.__cause__, ValueError)
        assert "row_shuffle" in str(err) and "[0:5)" in str(err)

    def test_chunk_failure_sequential_path(self):
        ex = ParallelExecutor(1)

        def body(ch: slice) -> None:
            raise ValueError("boom")

        with pytest.raises(PassExecutionError) as ei:
            ex.parallel_for(4, body, name="column_shuffle")
        assert ei.value.pass_name == "column_shuffle"
        assert isinstance(ei.value.__cause__, ValueError)

    def test_chunk_failure_waits_for_in_flight(self):
        """parallel_for must not raise while another chunk is still running:
        the caller tears down shared state right after, so the barrier has
        to cover in-flight chunks even on the failure path."""
        release = threading.Event()
        slow_done = threading.Event()

        def body(ch: slice) -> None:
            if ch.start == 0:
                # the slow chunk: blocks until the timer releases it
                release.wait(timeout=10)
                slow_done.set()
            else:
                raise ValueError("boom")

        timer = threading.Timer(0.2, release.set)
        timer.start()
        try:
            with ParallelExecutor(2) as ex:
                with pytest.raises(PassExecutionError) as ei:
                    ex.parallel_for(10, body, name="p")
        finally:
            timer.cancel()
        # the raise happened only after the blocked chunk finished
        assert slow_done.is_set()
        assert ei.value.chunk.start == 5


class TestTransposeAbortsOnPassFailure:
    def test_failed_pass_stops_the_schedule(self, monkeypatch):
        """If row_shuffle fails, column_shuffle must never run: executing
        later passes over a half-permuted buffer would corrupt it further
        and mask the original error."""
        from repro.core import equations as eq_mod

        calls = []
        orig_sprime = eq_mod.sprime_v

        def boom(dec, i, j):
            raise ValueError("boom")

        def spy_sprime(dec, i, j):
            calls.append("column_shuffle")
            return orig_sprime(dec, i, j)

        monkeypatch.setattr(eq_mod, "dprime_inverse_v", boom)
        monkeypatch.setattr(eq_mod, "sprime_v", spy_sprime)
        m, n = 7, 13  # coprime: no pre-rotation, row_shuffle runs first
        buf = np.arange(m * n, dtype=np.float64)
        snapshot = buf.copy()
        with ParallelTranspose(2, strength_reduced=False) as pt:
            with pytest.raises(PassExecutionError) as ei:
                pt.c2r(buf, m, n)
        assert ei.value.pass_name == "row_shuffle"
        assert calls == []  # column_shuffle never started
        # the index map raised before any write: buffer is untouched
        np.testing.assert_array_equal(buf, snapshot)


class TestParallelTranspose:
    @given(dim_pairs, thread_counts)
    @settings(max_examples=40, deadline=None)
    def test_c2r_matches_sequential_kernel(self, mn, threads):
        m, n = mn
        A = np.arange(m * n, dtype=np.float64)
        got = A.copy()
        with ParallelTranspose(threads) as pt:
            pt.c2r(got, m, n)
        ref = A.copy()
        transpose_inplace(ref, m, n, algorithm="c2r")
        np.testing.assert_array_equal(got, ref)

    @given(dim_pairs, thread_counts)
    @settings(max_examples=40, deadline=None)
    def test_r2c_inverts_c2r(self, mn, threads):
        m, n = mn
        A = np.arange(m * n, dtype=np.float64)
        buf = A.copy()
        with ParallelTranspose(threads) as pt:
            pt.c2r(buf, m, n)
            pt.r2c(buf, m, n)
        np.testing.assert_array_equal(buf, A)

    @given(dim_pairs, thread_counts, st.sampled_from(["C", "F"]))
    @settings(max_examples=40, deadline=None)
    def test_transpose_inplace_end_to_end(self, mn, threads, order):
        m, n = mn
        A = np.arange(m * n, dtype=np.float64).reshape(m, n)
        buf = A.ravel(order=order).copy()
        parallel_transpose_inplace(buf, m, n, order, n_threads=threads)
        np.testing.assert_array_equal(buf, A.T.ravel(order=order))

    @given(dim_pairs)
    @settings(max_examples=30, deadline=None)
    def test_strength_reduction_toggle_identical(self, mn):
        m, n = mn
        A = np.arange(m * n, dtype=np.float64)
        with_sr = A.copy()
        without_sr = A.copy()
        with ParallelTranspose(2, strength_reduced=True) as pt:
            pt.c2r(with_sr, m, n)
        with ParallelTranspose(2, strength_reduced=False) as pt:
            pt.c2r(without_sr, m, n)
        np.testing.assert_array_equal(with_sr, without_sr)

    def test_buffer_validated(self):
        with ParallelTranspose(1) as pt:
            with pytest.raises(ValueError):
                pt.c2r(np.zeros(5), 2, 3)
            with pytest.raises(ValueError):
                pt.r2c(np.zeros(5), 2, 3)
            with pytest.raises(ValueError):
                pt.transpose_inplace(np.zeros(6), 2, 3, "Z")

    def test_medium_matrix_many_threads(self):
        rng = np.random.default_rng(7)
        m, n = 173, 240
        A = rng.standard_normal((m, n))
        buf = A.ravel().copy()
        parallel_transpose_inplace(buf, m, n, n_threads=8)
        np.testing.assert_array_equal(buf, A.T.ravel())
