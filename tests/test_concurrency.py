"""Concurrency robustness: plans are immutable after construction and safe
to share across threads; executors are reusable."""

from __future__ import annotations

import os
import threading

import numpy as np
import pytest

from repro.core import BatchedTransposePlan, TransposePlan
from repro.parallel import ParallelExecutor, ParallelTranspose


@pytest.fixture(autouse=True)
def _shadow_memory_sanitizer():
    """With ``REPRO_SANITIZE=1`` the concurrency suite runs under the
    shadow-memory sanitizer; concurrent plan executions serialize on the
    sanitizer's execution lock (TSAN-style), so thread-safety of the plan
    objects is still exercised while each pass gets exact write accounting."""
    if os.environ.get("REPRO_SANITIZE", "0") in ("0", ""):
        yield
        return
    from repro.analysis import racecheck

    racecheck.enable()
    yield
    racecheck.disable()


class TestPlanThreadSafety:
    def test_one_plan_many_threads(self):
        m, n = 96, 132
        plan = TransposePlan(m, n)
        A = np.arange(m * n, dtype=np.float64)
        expected = A.reshape(m, n).T.copy().ravel()
        errors: list[Exception] = []

        def worker(seed: int) -> None:
            try:
                for _ in range(5):
                    buf = A.copy()
                    plan.execute(buf)
                    np.testing.assert_array_equal(buf, expected)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors

    def test_batched_plan_shared(self):
        plan = BatchedTransposePlan(24, 36)
        base = np.arange(4 * 24 * 36, dtype=np.float64)
        results = []

        def worker() -> None:
            buf = base.copy()
            plan.execute(buf)
            results.append(buf)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for r in results[1:]:
            np.testing.assert_array_equal(r, results[0])


class TestExecutorReuse:
    def test_sequential_reuse_of_pool(self):
        with ParallelExecutor(3) as ex:
            for total in (10, 100, 7):
                seen = np.zeros(total, dtype=np.int64)
                lock = threading.Lock()

                def body(ch: slice) -> None:
                    with lock:
                        seen[ch] += 1

                ex.parallel_for(total, body)
                assert (seen == 1).all()

    def test_transposer_reuse_across_shapes(self):
        with ParallelTranspose(2) as pt:
            for m, n in [(12, 18), (31, 7), (40, 40)]:
                A = np.arange(m * n, dtype=np.float64)
                buf = A.copy()
                pt.transpose_inplace(buf, m, n)
                np.testing.assert_array_equal(
                    buf.reshape(n, m), A.reshape(m, n).T
                )
