"""Stress tests: larger shapes across the whole stack.

Property tests keep shapes small for exhaustive checks; these runs push
realistic sizes through every layer once, catching anything that only
manifests at scale (index overflows, scratch sizing, view aliasing).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.aos import aos_to_soa_flat, soa_to_aos_flat
from repro.core import (
    BatchedTransposePlan,
    TransposePlan,
    transpose_inplace,
)
from repro.core.tensor import swap_first_axes_inplace
from repro.parallel import parallel_transpose_inplace
from repro.simd.cpu import deinterleave


@pytest.fixture(autouse=True)
def _shadow_memory_sanitizer():
    """With ``REPRO_SANITIZE=1`` the whole stress suite runs under the
    shadow-memory sanitizer: every plan/parallel pass is checked for
    double writes, read-after-clobber and missed coverage (CI runs both
    configurations; locally the flag is opt-in because it adds a full
    bookkeeping pass per real pass)."""
    if os.environ.get("REPRO_SANITIZE", "0") in ("0", ""):
        yield
        return
    from repro.analysis import racecheck

    racecheck.enable()
    yield
    racecheck.disable()


class TestScale:
    def test_multi_megabyte_transpose(self):
        m, n = 1999, 2503  # ~40 MB float64, coprime
        A = np.arange(m * n, dtype=np.float64)
        transpose_inplace(A, m, n)
        # spot-check the permutation instead of materializing the oracle
        V = A.reshape(n, m)
        rng = np.random.default_rng(0)
        for _ in range(200):
            i, j = int(rng.integers(m)), int(rng.integers(n))
            assert V[j, i] == i * n + j

    def test_shared_factor_large(self):
        m, n = 1800, 2400  # gcd 600 -> full 3-pass path
        A = np.arange(m * n, dtype=np.float32)
        transpose_inplace(A, m, n)
        V = A.reshape(n, m)
        rng = np.random.default_rng(1)
        for _ in range(200):
            i, j = int(rng.integers(m)), int(rng.integers(n))
            assert V[j, i] == np.float32(i * n + j)

    def test_plan_reuse_many_buffers(self):
        m, n = 640, 512
        plan = TransposePlan(m, n)
        rng = np.random.default_rng(2)
        for _ in range(5):
            A = rng.standard_normal(m * n)
            expected_first = A.reshape(m, n)[:, 0].copy()
            plan.execute(A)
            np.testing.assert_array_equal(A.reshape(n, m)[0], expected_first)

    def test_parallel_large(self):
        m, n = 1024, 1536
        A = np.arange(m * n, dtype=np.float64)
        parallel_transpose_inplace(A, m, n, n_threads=4)
        V = A.reshape(n, m)
        assert V[5, 7] == 7 * n + 5

    def test_aos_soa_million_structs(self):
        N, S = 1_000_000, 6
        buf = np.arange(N * S, dtype=np.float64)
        soa = aos_to_soa_flat(buf, N, S)
        np.testing.assert_array_equal(soa[2, :5], np.arange(5) * S + 2)
        back = soa_to_aos_flat(buf, N, S)
        np.testing.assert_array_equal(back[:2, :], [[0, 1, 2, 3, 4, 5],
                                                    [6, 7, 8, 9, 10, 11]])

    def test_batched_stack(self):
        k, m, n = 128, 96, 112
        plan = BatchedTransposePlan(m, n)
        stack = np.arange(k * m * n, dtype=np.float32)
        plan.execute(stack)
        first = stack[: m * n].reshape(n, m)
        assert first[3, 5] == np.float32(5 * n + 3)

    def test_tensor_axis_swap_large(self):
        t = np.arange(256 * 192 * 8, dtype=np.float32).reshape(256, 192, 8)
        out = swap_first_axes_inplace(t)
        assert out[10, 20, 3] == np.float32((20 * 192 + 10) * 8 + 3)

    def test_wide_simd_deinterleave_large(self):
        m, count = 16, 2**16
        buf = np.arange(count * m, dtype=np.float32)
        soa = deinterleave(buf, m)
        np.testing.assert_array_equal(soa[7, :4], np.arange(4) * m + 7)

    def test_int_overflow_regime(self):
        """Index products near 2**31 stay exact (int64 index math)."""
        m, n = 46_337, 101  # m*n ~ 4.7M but i*n products large
        A = np.arange(m * n, dtype=np.int32)
        transpose_inplace(A, m, n)
        V = A.reshape(n, m)
        assert V[100, 46_336] == np.int32(46_336 * n + 100)
