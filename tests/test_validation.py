"""Tests for the validation harness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import c2r_transpose
from repro.validation import checked, validate_transposer


def _good(buf, m, n):
    return c2r_transpose(buf, m, n)


def _wrong(buf, m, n):
    buf[:] = buf[::-1]  # a permutation, but not the transpose


def _out_of_place(buf, m, n):
    return buf.reshape(m, n).T.copy().ravel()  # never mutates buf


def _crashes(buf, m, n):
    raise RuntimeError("kernel exploded")


class TestValidateTransposer:
    def test_accepts_correct_kernel(self):
        report = validate_transposer(_good, count=25)
        assert report.ok
        assert report.checked == 25
        assert "OK" in str(report)

    def test_rejects_wrong_permutation(self):
        report = validate_transposer(_wrong, count=10)
        assert not report.ok
        assert any("wrong permutation" in why for *_, why in report.failures)

    def test_rejects_out_of_place_kernel(self):
        report = validate_transposer(_out_of_place, count=10)
        assert not report.ok

    def test_reports_exceptions(self):
        report = validate_transposer(_crashes, count=5)
        assert len(report.failures) == 5
        assert "RuntimeError" in report.failures[0][2]
        assert "FAILED" in str(report)

    def test_explicit_shapes(self):
        report = validate_transposer(_good, shapes=[(3, 8), (4, 8)])
        assert report.checked == 2 and report.ok

    def test_includes_paper_shapes(self):
        """The default population pins the paper's figures (3x8, 4x8)."""
        seen = []

        def spy(buf, m, n):
            seen.append((m, n))
            return c2r_transpose(buf, m, n)

        validate_transposer(spy, count=20)
        assert (3, 8) in seen and (4, 8) in seen


class TestChecked:
    def test_passes_through_correct_kernel(self):
        safe = checked(_good)
        buf = np.arange(12)
        safe(buf, 3, 4)
        np.testing.assert_array_equal(buf.reshape(4, 3), np.arange(12).reshape(3, 4).T)

    def test_catches_bad_kernel(self):
        safe = checked(_wrong)
        with pytest.raises(AssertionError, match="wrong permutation"):
            safe(np.arange(12), 3, 4)

    def test_kwargs_forwarded(self):
        safe = checked(c2r_transpose)
        safe(np.arange(12), 3, 4, variant="restricted")
