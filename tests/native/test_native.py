"""The compiled native kernel backend.

Differential correctness against the numpy executors over a
dtype x order x shape lattice, plan-cache byte accounting of the ``.so``
artifacts (including eviction unlinking them), concurrent first-compile,
the scratch-failure resume contract, and every leg of the fallback
resolution contract (``REPRO_NATIVE=0``, no compiler, min-elems floor,
explicit backend requests).

Tests that need a real toolchain are skipped on machines without one; the
fallback tests pin ``CC`` to a nonexistent path so they run everywhere.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import native
from repro.core.batched import batched_transpose_inplace
from repro.core.transpose import transpose_inplace
from repro.native.kernel import NativeScratchError
from repro.parallel import ParallelTranspose
from repro.runtime import metrics, plan_cache

requires_toolchain = pytest.mark.skipif(
    not native.available(), reason="no C toolchain on this machine"
)


@pytest.fixture(autouse=True)
def _clean_state():
    """Known-clean plan cache and metrics around every test."""
    cache = plan_cache.get_plan_cache()
    saved = (cache.max_bytes, cache.enabled)
    plan_cache.clear()
    cache.reset_stats()
    metrics.reset()
    yield
    cache.configure(max_bytes=saved[0], enabled=saved[1])
    plan_cache.clear()
    cache.reset_stats()
    metrics.reset()


def _counters() -> dict:
    return metrics.registry.snapshot()["counters"]


def _expected(buf: np.ndarray, m: int, n: int, order: str) -> np.ndarray:
    """Ground truth via out-of-place numpy reshape."""
    if order == "C":
        return np.ascontiguousarray(buf.reshape(m, n).T).ravel()
    return np.asfortranarray(buf.reshape(m, n, order="F").T).ravel(order="F")


# ---------------------------------------------------------------------------
# differential lattice
# ---------------------------------------------------------------------------


@requires_toolchain
class TestDifferential:
    @pytest.mark.parametrize("order", ["C", "F"])
    @pytest.mark.parametrize(
        "m,n", [(31, 47), (48, 36), (64, 64), (256, 384)]
    )
    def test_native_matches_numpy_across_shapes(self, m, n, order):
        proto = np.arange(m * n, dtype=np.float64)
        nat = transpose_inplace(proto.copy(), m, n, order, backend="native")
        ref = transpose_inplace(proto.copy(), m, n, order, backend="numpy")
        np.testing.assert_array_equal(nat, ref)
        np.testing.assert_array_equal(nat, _expected(proto, m, n, order))

    @pytest.mark.parametrize(
        "dtype", [np.uint8, np.float32, np.float64, np.complex128]
    )
    @pytest.mark.parametrize("order,m,n", [("C", 256, 384), ("F", 48, 36)])
    def test_native_matches_numpy_across_dtypes(self, dtype, order, m, n):
        proto = np.arange(m * n).astype(dtype)
        nat = transpose_inplace(proto.copy(), m, n, order, backend="native")
        ref = transpose_inplace(proto.copy(), m, n, order, backend="numpy")
        np.testing.assert_array_equal(nat, ref)

    @pytest.mark.parametrize("algorithm", ["c2r", "r2c"])
    def test_both_decompositions(self, algorithm):
        m, n = 256, 384
        proto = np.arange(m * n, dtype=np.float64)
        nat = transpose_inplace(
            proto.copy(), m, n, algorithm=algorithm, backend="native"
        )
        np.testing.assert_array_equal(nat, _expected(proto, m, n, "C"))

    def test_auto_backend_selects_native_above_floor(self):
        m, n = 256, 384  # 98304 elements >= the 16384 default floor
        proto = np.arange(m * n, dtype=np.float64)
        out = transpose_inplace(proto.copy(), m, n)
        np.testing.assert_array_equal(out, _expected(proto, m, n, "C"))
        assert _counters().get("native.compile", 0) == 1

    def test_batched_native_matches_numpy(self):
        k, m, n = 3, 64, 48
        proto = np.arange(k * m * n, dtype=np.float64)
        nat = batched_transpose_inplace(proto.copy(), m, n, backend="native")
        ref = batched_transpose_inplace(proto.copy(), m, n, backend="numpy")
        np.testing.assert_array_equal(nat, ref)
        tiles = proto.copy().reshape(k, m, n)
        expected = np.ascontiguousarray(tiles.transpose(0, 2, 1)).ravel()
        np.testing.assert_array_equal(nat, expected)

    def test_parallel_native_matches_interpreter(self):
        m, n = 256, 384
        proto = np.arange(m * n, dtype=np.float64)
        with ParallelTranspose(2, native="auto") as pt:
            nat = pt.transpose_inplace(proto.copy(), m, n)
        with ParallelTranspose(2, native="off") as pt:
            ref = pt.transpose_inplace(proto.copy(), m, n)
        np.testing.assert_array_equal(nat, ref)
        np.testing.assert_array_equal(nat, _expected(proto, m, n, "C"))
        # the native chunks actually engaged (a kernel was compiled)
        assert _counters().get("native.compile", 0) >= 1


# ---------------------------------------------------------------------------
# plan-cache accounting of compiled artifacts
# ---------------------------------------------------------------------------


@requires_toolchain
@requires_toolchain
class TestBandedEntryPoints:
    """``run_pass_banded``: the column-facing passes executed against
    band-sized buffers compose to the same permutation as the full-width
    entry points — the contract the out-of-core ``BandedExecutor`` runs on."""

    @pytest.mark.parametrize("algorithm", ["c2r", "r2c"])
    @pytest.mark.parametrize("m,n", [(12, 18), (12, 96), (31, 47)])
    def test_banded_composes_to_full_pass(self, m, n, algorithm):
        from repro.core.indexing import Decomposition
        from repro.native.codegen import generate_source
        from repro.native.kernel import compile_spec
        from repro.parallel.partition import balanced_chunks

        dec = Decomposition.of(m, n)
        kernel = compile_spec(generate_source(dec, algorithm, 8))
        state = np.arange(m * n, dtype=np.uint64).reshape(m, n)
        for i, p in enumerate(kernel.passes):
            ref = state.copy()
            kernel.run_pass(i, ref.ctypes.data, 0, p.extent)
            if not kernel.has_banded(i):
                assert p.axis == "rows"  # row passes need no rebase
                state = ref
                continue
            unit = dec.b if p.axis == "groups" else 1
            got = state.copy()
            for bnd in balanced_chunks(p.extent, min(3, p.extent)):
                c0, c1 = bnd.start * unit, bnd.stop * unit
                B = np.ascontiguousarray(got[:, c0:c1])
                for ch in balanced_chunks(bnd.stop - bnd.start, 2):
                    kernel.run_pass_banded(
                        i, B.ctypes.data,
                        bnd.start + ch.start, bnd.start + ch.stop,
                        B.shape[1], bnd.start,
                    )
                got[:, c0:c1] = B
            np.testing.assert_array_equal(got, ref)
            state = ref

    def test_row_pass_has_no_banded_variant(self):
        from repro.core.indexing import Decomposition
        from repro.native.codegen import generate_source
        from repro.native.kernel import compile_spec

        kernel = compile_spec(
            generate_source(Decomposition.of(12, 18), "c2r", 8)
        )
        idx = next(
            i for i, p in enumerate(kernel.passes) if p.axis == "rows"
        )
        assert not kernel.has_banded(idx)
        with pytest.raises(ValueError, match="no banded entry point"):
            kernel.run_pass_banded(idx, 0, 0, 1, 18, 0)


class TestArtifactAccounting:
    def test_so_bytes_charged_to_plan_cache_entry(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_DIR", str(tmp_path))
        m, n = 256, 384
        proto = np.arange(m * n, dtype=np.float64)
        cache = plan_cache.get_plan_cache()
        transpose_inplace(proto.copy(), m, n, backend="numpy")
        plan_only_bytes = cache.current_bytes
        transpose_inplace(proto.copy(), m, n, backend="native")
        artifacts = list(tmp_path.glob("repro_native_*.so"))
        assert len(artifacts) == 1
        delta = cache.current_bytes - plan_only_bytes
        assert delta == artifacts[0].stat().st_size > 0

    def test_clear_unlinks_artifacts(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_DIR", str(tmp_path))
        proto = np.arange(256 * 384, dtype=np.float64)
        transpose_inplace(proto.copy(), 256, 384, backend="native")
        assert list(tmp_path.glob("*.so"))
        plan_cache.clear()
        assert not list(tmp_path.glob("*.so"))

    def test_eviction_under_byte_budget_unlinks_artifact(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_NATIVE_DIR", str(tmp_path))
        cache = plan_cache.get_plan_cache()
        proto_a = np.arange(256 * 384, dtype=np.float64)
        proto_b = np.arange(192 * 320, dtype=np.float64)
        transpose_inplace(proto_a.copy(), 256, 384, backend="native")
        transpose_inplace(proto_b.copy(), 192, 320, backend="native")
        assert len(list(tmp_path.glob("*.so"))) == 2
        evictions_before = cache.stats()["evictions"]
        # A budget smaller than either entry: everything evictable goes
        # (the cache keeps at most the single most-recent entry).
        cache.configure(max_bytes=1)
        assert cache.stats()["evictions"] > evictions_before
        assert len(list(tmp_path.glob("*.so"))) <= 1
        plan_cache.clear()
        assert not list(tmp_path.glob("*.so"))

    def test_concurrent_first_compile_produces_one_artifact(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_NATIVE_DIR", str(tmp_path))
        m, n = 256, 384
        proto = np.arange(m * n, dtype=np.float64)
        expected = _expected(proto, m, n, "C")
        barrier = threading.Barrier(2)
        failures: list[Exception] = []

        def work():
            try:
                buf = proto.copy()
                barrier.wait(timeout=30)
                transpose_inplace(buf, m, n, backend="native")
                np.testing.assert_array_equal(buf, expected)
            except Exception as exc:  # pragma: no cover - failure detail
                failures.append(exc)

        threads = [threading.Thread(target=work) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not failures
        assert len(list(tmp_path.glob("repro_native_*.so"))) == 1
        assert _counters().get("native.compile", 0) == 1

    def test_release_is_idempotent(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_DIR", str(tmp_path))
        m, n = 256, 384
        transpose_inplace(
            np.arange(m * n, dtype=np.float64), m, n, backend="native"
        )
        plan = plan_cache.get_single_plan(
            m, n, "C", "auto", np.dtype(np.float64)
        )
        kernel = native.kernel_for_plan(plan, 8)
        assert kernel is not None and not kernel.released
        kernel.release()
        assert kernel.released
        kernel.release()  # second call is a no-op
        assert not list(tmp_path.glob("*.so"))


# ---------------------------------------------------------------------------
# scratch-failure resume
# ---------------------------------------------------------------------------


@requires_toolchain
class TestScratchResume:
    def test_single_resumes_from_failing_pass(self, monkeypatch):
        m, n = 256, 384
        proto = np.arange(m * n, dtype=np.float64)
        transpose_inplace(proto.copy(), m, n, backend="native")  # compile
        plan = plan_cache.get_single_plan(
            m, n, "C", "auto", np.dtype(np.float64)
        )
        kernel = native.kernel_for_plan(plan, 8)
        assert kernel is not None and len(kernel.passes) >= 2
        real_run_pass = kernel.run_pass

        def failing_run_pass(idx, addr, lo, hi):
            # pass 0 completes natively, pass 1 "fails" before moving data
            if idx == 0:
                return real_run_pass(idx, addr, lo, hi)
            raise NativeScratchError(idx)

        def failing_run(addr):
            failing_run_pass(0, addr, 0, kernel.passes[0].extent)
            failing_run_pass(1, addr, 0, kernel.passes[1].extent)

        # cover both execution branches (metrics on -> per-pass entry points,
        # metrics off -> the one-shot driver)
        monkeypatch.setattr(kernel, "run_pass", failing_run_pass)
        monkeypatch.setattr(kernel, "run", failing_run)
        monkeypatch.setattr(native, "_warned_once", True)  # silence
        buf = proto.copy()
        transpose_inplace(buf, m, n, backend="native")
        np.testing.assert_array_equal(buf, _expected(proto, m, n, "C"))
        assert _counters().get("native.fallback", 0) >= 1

    def test_batched_resumes_from_failing_tile(self, monkeypatch):
        k, m, n = 3, 64, 48
        proto = np.arange(k * m * n, dtype=np.float64)
        batched_transpose_inplace(proto.copy(), m, n, backend="native")
        plan = plan_cache.get_batched_plan(
            m, n, k, "C", "auto", np.dtype(np.float64)
        )
        kernel = native.kernel_for_plan(plan, 8)
        assert kernel is not None
        real_run_pass = kernel.run_pass

        def failing_run_pass_batch(idx, addr, nk):
            # tile 0 finishes pass 0 natively; tile 1 fails before moving
            # anything, so the numpy resume owns tiles [1:] for this pass
            # and every later pass end to end.
            assert idx == 0
            real_run_pass(0, addr, 0, kernel.passes[0].extent)
            raise NativeScratchError(0, 1)

        def failing_run_batch(addr, nk):
            failing_run_pass_batch(0, addr, nk)

        monkeypatch.setattr(kernel, "run_pass_batch", failing_run_pass_batch)
        monkeypatch.setattr(kernel, "run_batch", failing_run_batch)
        monkeypatch.setattr(native, "_warned_once", True)
        buf = proto.copy()
        batched_transpose_inplace(buf, m, n, backend="native")
        tiles = proto.copy().reshape(k, m, n)
        expected = np.ascontiguousarray(tiles.transpose(0, 2, 1)).ravel()
        np.testing.assert_array_equal(buf, expected)
        assert _counters().get("native.fallback", 0) >= 1


# ---------------------------------------------------------------------------
# sanitizer x native: sanitized runs must force numpy
# ---------------------------------------------------------------------------


class TestSanitizedNative:
    """``REPRO_SANITIZE=1`` must force the numpy fallback for native
    requests: compiled kernels bypass the shadow-memory hooks, so a
    sanitized run that silently used one would validate nothing.  Both the
    single and batched executors must refuse the kernel, run the hooked
    gathers, and leave an observable ``native.fallback`` record."""

    @pytest.fixture(autouse=True)
    def _sanitized(self, monkeypatch):
        from repro.analysis import racecheck

        was = racecheck.sanitizer.enabled
        racecheck.enable()
        monkeypatch.setattr(native, "_warned_once", True)  # silence
        yield
        racecheck.sanitizer.enabled = was

    def test_single_sanitized_native_records_shadow_coverage(self):
        from repro.analysis.racecheck import sanitizer

        m, n = 256, 384
        proto = np.arange(m * n, dtype=np.float64)
        before = sanitizer.stats()["passes_checked"]
        buf = proto.copy()
        transpose_inplace(buf, m, n, backend="native")
        np.testing.assert_array_equal(buf, _expected(proto, m, n, "C"))
        assert sanitizer.stats()["passes_checked"] > before
        assert _counters().get("native.fallback", 0) >= 1
        assert _counters().get("native.compile", 0) == 0

    def test_batched_sanitized_native_records_shadow_coverage(self):
        from repro.analysis.racecheck import sanitizer

        k, m, n = 3, 64, 48
        proto = np.arange(k * m * n, dtype=np.float64)
        before = sanitizer.stats()["passes_checked"]
        buf = proto.copy()
        batched_transpose_inplace(buf, m, n, backend="native")
        tiles = proto.copy().reshape(k, m, n)
        expected = np.ascontiguousarray(tiles.transpose(0, 2, 1)).ravel()
        np.testing.assert_array_equal(buf, expected)
        assert sanitizer.stats()["passes_checked"] > before
        assert _counters().get("native.fallback", 0) >= 1
        assert _counters().get("native.compile", 0) == 0

    def test_batched_sanitizer_catches_out_of_range_gather(self):
        from repro.analysis.racecheck import SanitizerError
        from repro.core.batched import BatchedTransposePlan

        k, m, n = 2, 12, 18
        plan = BatchedTransposePlan(m, n)
        kind, idx = plan._steps[0]
        bad = idx.copy()
        bad.flat[0] = (plan.dec.m if kind == "rows3" else plan.dec.n) + 3
        plan._steps[0] = (kind, bad)
        with pytest.raises(SanitizerError) as exc:
            plan.execute(np.arange(k * m * n, dtype=np.int64))
        assert exc.value.kind == "out-of-bounds read"


# ---------------------------------------------------------------------------
# fallback resolution contract
# ---------------------------------------------------------------------------


class TestFallbackContract:
    def test_no_compiler_falls_back_with_warning_and_metric(
        self, monkeypatch
    ):
        monkeypatch.setenv("CC", "/nonexistent/cc")
        monkeypatch.setattr(native, "_warned_once", False)
        m, n = 160, 128
        proto = np.arange(m * n, dtype=np.float64)
        buf = proto.copy()
        with pytest.warns(RuntimeWarning, match="falling back to numpy"):
            transpose_inplace(buf, m, n, backend="native")
        np.testing.assert_array_equal(buf, _expected(proto, m, n, "C"))
        assert _counters().get("native.fallback", 0) == 1
        assert _counters().get("native.compile", 0) == 0
        # the failed resolution is memoized, but the metric still fires
        transpose_inplace(proto.copy(), m, n, backend="native")
        assert _counters().get("native.fallback", 0) == 2

    def test_repro_native_0_is_silent_for_auto(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE", "0")
        monkeypatch.setattr(native, "_warned_once", False)
        m, n = 256, 384
        proto = np.arange(m * n, dtype=np.float64)
        buf = proto.copy()
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            transpose_inplace(buf, m, n)
        np.testing.assert_array_equal(buf, _expected(proto, m, n, "C"))
        assert _counters().get("native.fallback", 0) == 0
        assert _counters().get("native.compile", 0) == 0

    def test_repro_native_0_with_explicit_request_records_fallback(
        self, monkeypatch
    ):
        monkeypatch.setenv("REPRO_NATIVE", "0")
        monkeypatch.setattr(native, "_warned_once", True)
        m, n = 256, 384
        proto = np.arange(m * n, dtype=np.float64)
        buf = proto.copy()
        transpose_inplace(buf, m, n, backend="native")
        np.testing.assert_array_equal(buf, _expected(proto, m, n, "C"))
        assert _counters().get("native.fallback", 0) == 1

    @requires_toolchain
    def test_min_elems_floor_gates_auto_but_not_explicit(self):
        m, n = 32, 48  # 1536 elements, far below the 16384 floor
        proto = np.arange(m * n, dtype=np.float64)
        transpose_inplace(proto.copy(), m, n)  # auto: stays on numpy
        assert _counters().get("native.compile", 0) == 0
        buf = proto.copy()
        transpose_inplace(buf, m, n, backend="native")  # explicit: compiles
        assert _counters().get("native.compile", 0) == 1
        np.testing.assert_array_equal(buf, _expected(proto, m, n, "C"))

    @requires_toolchain
    def test_min_elems_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_MIN_ELEMS", "100")
        m, n = 32, 48
        transpose_inplace(np.arange(m * n, dtype=np.float64), m, n)
        assert _counters().get("native.compile", 0) == 1

    def test_native_requires_plan_cache_path(self):
        proto = np.arange(64 * 96, dtype=np.float64)
        with pytest.raises(ValueError, match="cached-plan path"):
            transpose_inplace(
                proto, 64, 96, use_plan_cache=False, backend="native"
            )

    def test_unknown_backend_rejected(self):
        proto = np.arange(64 * 96, dtype=np.float64)
        with pytest.raises(ValueError, match="backend"):
            transpose_inplace(proto, 64, 96, backend="fortran")

    def test_unavailable_reason_strings(self, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE", "0")
        assert native.unavailable_reason() == "disabled by REPRO_NATIVE=0"
        monkeypatch.setenv("REPRO_NATIVE", "1")
        monkeypatch.setenv("CC", "/nonexistent/cc")
        assert native.unavailable_reason() == "no C compiler available"
        assert not native.available()


# ---------------------------------------------------------------------------
# toolchains
# ---------------------------------------------------------------------------


@requires_toolchain
class TestToolchains:
    def test_cffi_toolchain_compiles_and_matches(
        self, tmp_path, monkeypatch
    ):
        pytest.importorskip("cffi")
        monkeypatch.setenv("REPRO_NATIVE_TOOLCHAIN", "cffi")
        monkeypatch.setenv("REPRO_NATIVE_DIR", str(tmp_path))
        from repro.native.kernel import toolchain_name

        assert toolchain_name() == "cffi"
        m, n = 256, 384
        proto = np.arange(m * n, dtype=np.float64)
        buf = proto.copy()
        transpose_inplace(buf, m, n, backend="native")
        np.testing.assert_array_equal(buf, _expected(proto, m, n, "C"))
        assert len(list(tmp_path.glob("repro_native_*.so"))) == 1
        assert _counters().get("native.compile", 0) == 1

    def test_profile_reports_native_backend(self):
        from repro.trace.profile import profile_shape

        prof = profile_shape(256, 384, repeats=1, backend="native")
        assert prof.backend == "native"
        prof = profile_shape(256, 384, repeats=1, backend="numpy")
        assert prof.backend == "numpy"
