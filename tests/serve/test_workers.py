"""Worker pool: drain-style shutdown, retry-once, failure isolation."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.serve.batcher import ShapeBatcher
from repro.serve.queue import Request, RequestQueue
from repro.serve.workers import WorkerPool


def _req(m=8, n=6, seed=0, tiles=1):
    rng = np.random.default_rng(seed)
    buf = (rng.random(tiles * m * n) * 100).astype(np.float64)
    return Request(buf, m, n, tiles=tiles)


def _expected(r: Request) -> np.ndarray:
    tiles = r.buf.reshape(r.tiles, r.m, r.n)
    return np.ascontiguousarray(tiles.transpose(0, 2, 1)).reshape(-1)


def _stack(workers=2, max_batch=8, max_wait_s=0.001, maxsize=256):
    q = RequestQueue(maxsize=maxsize)
    b = ShapeBatcher(q, max_batch=max_batch, max_wait_s=max_wait_s)
    return q, b, WorkerPool(b, workers, poll_s=0.01)


class TestPoolLifecycle:
    def test_start_twice_raises(self):
        _, _, pool = _stack()
        with pool:
            with pytest.raises(RuntimeError):
                pool.start()

    def test_n_workers_validation(self):
        _, b, _ = _stack()
        with pytest.raises(ValueError):
            WorkerPool(b, 0)

    def test_workers_are_named_lanes(self):
        _, _, pool = _stack(workers=2)
        with pool:
            names = {t.name for t in pool._threads}
            assert names == {"repro-serve-worker-0", "repro-serve-worker-1"}
            assert pool.alive == 2

    def test_shutdown_summary_shape(self):
        q, _, pool = _stack()
        pool.start()
        summary = pool.shutdown(timeout=5)
        assert summary == {
            "requests_served": 0,
            "groups_executed": 0,
            "retries": 0,
            "group_failures": 0,
            "drained": True,
        }
        assert q.closed


class TestServing:
    def test_concurrent_clients_differential(self):
        # Many client threads, mixed shapes, all results must match numpy.
        q, _, pool = _stack(workers=2)
        shapes = [(8, 6), (5, 9), (8, 6), (12, 4)]
        results = {}
        lock = threading.Lock()

        def client(i):
            m, n = shapes[i % len(shapes)]
            r = _req(m, n, seed=i, tiles=1 + i % 3)
            q.submit(r)
            out = r.wait(timeout=30)
            with lock:
                results[i] = (r, out.copy())

        with pool:
            threads = [
                threading.Thread(target=client, args=(i,)) for i in range(24)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
        assert len(results) == 24
        for r, out in results.values():
            np.testing.assert_array_equal(out, _expected(r))

    def test_graceful_shutdown_drains_backlog(self):
        # Submit a pile of work and shut down immediately: every accepted
        # request must still be executed ("drain, don't drop").
        q, _, pool = _stack(workers=2, max_wait_s=60.0, max_batch=64)
        reqs = [q.submit(_req(seed=i)) for i in range(40)]
        pool.start()
        summary = pool.shutdown(timeout=30)
        assert summary["drained"]
        assert summary["requests_served"] == 40
        for r in reqs:
            np.testing.assert_array_equal(r.wait(timeout=0), _expected(r))

    def test_retry_once_recovers_from_transient_failure(self, monkeypatch):
        q, b, pool = _stack(workers=1)
        real = b.execute_group
        calls = {"n": 0}

        def flaky(group):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient blip")
            return real(group)

        monkeypatch.setattr(b, "execute_group", flaky)
        r = q.submit(_req(seed=7))
        with pool:
            np.testing.assert_array_equal(r.wait(timeout=30), _expected(r))
        assert pool.retries == 1
        assert pool.group_failures == 0

    def test_second_failure_fails_the_group(self, monkeypatch):
        q, b, pool = _stack(workers=1)

        def broken(group):
            raise RuntimeError("permanently broken")

        monkeypatch.setattr(b, "execute_group", broken)
        r = q.submit(_req())
        pool.start()
        with pytest.raises(RuntimeError, match="permanently broken"):
            r.wait(timeout=30)
        # The pool survives a failed group and keeps draining.
        monkeypatch.undo()
        r2 = q.submit(_req(seed=1))
        np.testing.assert_array_equal(r2.wait(timeout=30), _expected(r2))
        summary = pool.shutdown(timeout=10)
        assert summary["group_failures"] == 1
        assert summary["retries"] == 1  # first failure consumed the retry
