"""Live SLO tracker: windowed p99, burn rates, multiwindow alert logic.

All tests drive the clock through the explicit ``now=`` parameter so the
window arithmetic is deterministic."""

from __future__ import annotations

import pytest

from repro.serve.slo import DEFAULT_WINDOWS, SloTracker, _p99


class TestP99:
    def test_empty_is_zero(self):
        assert _p99([]) == 0.0

    def test_nearest_rank_on_100_samples(self):
        # 1..100 ms: nearest-rank p99 over 100 points lands on the 99th
        assert _p99(list(range(1, 101))) == 99

    def test_single_sample(self):
        assert _p99([7.5]) == 7.5


class TestWindows:
    def test_old_samples_age_out_of_short_window(self):
        slo = SloTracker(windows=(60.0, 600.0))
        slo.observe(0.010, ok=True, now=0.0)
        slo.observe(0.020, ok=True, now=500.0)
        state = slo.state(now=510.0)
        short, long_ = state["windows"]
        assert short["window_s"] == 60.0
        assert short["samples"] == 1  # only the recent one
        assert long_["samples"] == 2
        assert state["total_observed"] == 2

    def test_p99_judged_against_objective(self):
        slo = SloTracker(p99_objective_ms=50.0, windows=(60.0,))
        for _ in range(98):
            slo.observe(0.010, now=0.0)
        state = slo.state(now=1.0)
        assert state["windows"][0]["p99_ok"] is True
        for _ in range(3):  # a >1% tail of 500 ms responses moves p99
            slo.observe(0.500, now=2.0)
        state = slo.state(now=3.0)
        assert state["windows"][0]["p99_ms"] == pytest.approx(500.0)
        assert state["windows"][0]["p99_ok"] is False


class TestBurnRate:
    def test_burn_rate_is_error_rate_over_budget(self):
        slo = SloTracker(error_budget=0.01, windows=(60.0,))
        for i in range(100):
            slo.observe(0.001, ok=(i != 0), now=0.0)  # 1% errors
        state = slo.state(now=1.0)
        win = state["windows"][0]
        assert win["error_rate"] == pytest.approx(0.01)
        assert win["burn_rate"] == pytest.approx(1.0)
        assert state["alerting"] is False  # at budget, not over threshold

    def test_alert_requires_every_window_burning(self):
        """Recent errors trip the short window but not yet the long one:
        no alert.  Sustained errors trip both: alert."""
        slo = SloTracker(error_budget=0.01, windows=(60.0, 600.0),
                         alert_burn_rate=2.0)
        # plenty of old successes dilute the long window
        for _ in range(2000):
            slo.observe(0.001, ok=True, now=0.0)
        # a recent burst of errors: short window burns hot
        for _ in range(10):
            slo.observe(0.001, ok=False, now=580.0)
        state = slo.state(now=590.0)
        short, long_ = state["windows"]
        assert short["burn_rate"] > 2.0
        assert long_["burn_rate"] < 2.0
        assert state["alerting"] is False
        # now the errors persist until the old successes age out
        for _ in range(10):
            slo.observe(0.001, ok=False, now=700.0)
        state = slo.state(now=710.0)
        assert all(w["burn_rate"] > 2.0 for w in state["windows"]
                   if w["samples"])
        assert state["alerting"] is True

    def test_no_samples_means_no_alert(self):
        slo = SloTracker()
        state = slo.state(now=0.0)
        assert state["alerting"] is False
        assert state["burn_rate_max"] == 0.0

    def test_total_counters_survive_window_expiry(self):
        slo = SloTracker(windows=(1.0,))
        slo.observe(0.001, ok=False, now=0.0)
        state = slo.state(now=100.0)
        assert state["windows"][0]["samples"] == 0
        assert state["total_observed"] == 1
        assert state["total_errors"] == 1


class TestConfig:
    def test_windows_sorted_short_first(self):
        slo = SloTracker(windows=(600.0, 60.0))
        assert slo.windows == (60.0, 600.0)

    def test_defaults(self):
        slo = SloTracker()
        assert slo.windows == DEFAULT_WINDOWS

    def test_validation(self):
        with pytest.raises(ValueError):
            SloTracker(windows=())
        with pytest.raises(ValueError):
            SloTracker(error_budget=0.0)

    def test_reset(self):
        slo = SloTracker()
        slo.observe(0.001, ok=False, now=0.0)
        slo.reset()
        state = slo.state(now=0.0)
        assert state["total_observed"] == 0
        assert state["total_errors"] == 0


class TestUnifiedPercentileDefinition:
    def test_loadgen_and_slo_agree_on_p99(self):
        """Regression: the loadgen report used interpolated np.percentile
        while the SLO tracker used nearest-rank, so the same latencies
        produced two different 'p99's.  Both now share nearest_rank."""
        from repro.serve.loadgen import _percentiles
        from repro.serve.slo import _p99, nearest_rank

        rng = [1.0, 2.0, 5.0, 8.0, 13.0, 21.0, 34.0, 55.0, 89.0, 144.0]
        # loadgen takes seconds, reports milliseconds
        report = _percentiles([v / 1e3 for v in rng])
        assert report["p99"] == _p99(rng)
        assert report["p50"] == nearest_rank(rng, 50)
        assert report["p90"] == nearest_rank(rng, 90)
        # nearest-rank returns an observed sample, never an interpolation
        for key in ("p50", "p90", "p99"):
            assert report[key] in rng

    def test_nearest_rank_semantics(self):
        from repro.serve.slo import nearest_rank

        assert nearest_rank([], 99) == 0.0
        assert nearest_rank([7.0], 99) == 7.0
        values = list(range(1, 101))
        assert nearest_rank(values, 99) == 99
        assert nearest_rank(values, 50) == 50
        assert nearest_rank([3.0, 1.0, 2.0], 100) == 3.0
