"""/statusz endpoint, trace-id minting/echo, and event-log integration."""

from __future__ import annotations

import http.client
import json

import numpy as np
import pytest

from repro.serve import ServeConfig, TransposeServer
from repro.trace import events, spans


@pytest.fixture
def server():
    srv = TransposeServer(
        ServeConfig(port=0, workers=1, queue_size=32, max_wait_ms=0.5)
    ).start()
    yield srv
    srv.shutdown(timeout=10)


def _post(srv, body, headers):
    host, port = srv.address
    conn = http.client.HTTPConnection(host, port, timeout=10)
    try:
        conn.request("POST", "/transpose", body=body, headers=headers)
        resp = conn.getresponse()
        return resp.status, resp.read(), dict(resp.getheaders())
    finally:
        conn.close()


def _get(srv, path):
    host, port = srv.address
    conn = http.client.HTTPConnection(host, port, timeout=10)
    try:
        conn.request("GET", path)
        resp = conn.getresponse()
        return resp.status, resp.read()
    finally:
        conn.close()


def _headers(m, n, dtype="float64", **extra):
    h = {"X-Repro-Rows": str(m), "X-Repro-Cols": str(n),
         "X-Repro-Dtype": dtype}
    h.update(extra)
    return h


def _body(m, n, dtype=np.float64):
    return np.arange(m * n, dtype=dtype).tobytes()


class TestStatusz:
    def test_reports_queue_slo_native_and_trace_health(self, server):
        _post(server, _body(8, 6), _headers(8, 6))
        status, body = _get(server, "/statusz")
        assert status == 200
        doc = json.loads(body)
        assert doc["status"] == "ok"
        assert doc["queue"]["depth"] == 0
        assert doc["queue"]["maxsize"] == 32
        assert doc["inflight"] == 0
        assert doc["accepted"] >= 1
        assert doc["workers"]["alive"] == 1
        assert doc["workers"]["mode"] == "thread"
        slo = doc["slo"]
        assert slo["p99_objective_ms"] == 50.0
        assert slo["total_observed"] >= 1
        assert {"burn_rate", "p99_ms", "samples"} <= set(slo["windows"][0])
        assert "alerting" in slo and "burn_rate_max" in slo
        assert {"calls", "fallback", "compile", "unsupported"} \
            <= set(doc["native"])
        assert "dropped_spans" in doc["trace"]
        assert "emitted" in doc["events"]

    def test_slo_objectives_follow_config(self):
        srv = TransposeServer(ServeConfig(
            port=0, workers=1, slo_p99_ms=10.0, slo_error_budget=0.05,
        )).start()
        try:
            doc = json.loads(_get(srv, "/statusz")[1])
            assert doc["slo"]["p99_objective_ms"] == 10.0
            assert doc["slo"]["error_budget"] == 0.05
        finally:
            srv.shutdown(timeout=10)

    def test_client_errors_do_not_burn_error_budget(self, server):
        _post(server, b"", _headers(0, 0))  # 400
        doc = json.loads(_get(server, "/statusz")[1])
        assert doc["slo"]["total_observed"] >= 1
        assert doc["slo"]["total_errors"] == 0  # 4xx is the client's fault

    def test_metrics_include_slo_gauges(self, server):
        _post(server, _body(4, 4), _headers(4, 4))
        status, body = _get(server, "/metrics")
        assert status == 200
        text = body.decode()
        assert "repro_slo_p99_objective_ms" in text
        assert "repro_slo_burn_rate_max" in text
        assert "repro_trace_dropped_spans_total" in text


class TestTraceIdHeader:
    def test_valid_client_trace_id_is_honored_and_echoed(self, server):
        status, _, headers = _post(
            server, _body(8, 6),
            _headers(8, 6, **{"X-Repro-Trace-Id": "client-abc.123"}),
        )
        assert status == 200
        assert headers["X-Repro-Trace-Id"] == "client-abc.123"

    def test_missing_trace_id_is_minted(self, server):
        status, _, headers = _post(server, _body(8, 6), _headers(8, 6))
        assert status == 200
        minted = headers["X-Repro-Trace-Id"]
        assert len(minted) == 16
        int(minted, 16)

    def test_malformed_trace_id_is_replaced_not_echoed(self, server):
        evil = "abc def<script>" + "x" * 200
        status, _, headers = _post(
            server, _body(8, 6), _headers(8, 6, **{"X-Repro-Trace-Id": evil}),
        )
        assert status == 200
        assert headers["X-Repro-Trace-Id"] != evil
        int(headers["X-Repro-Trace-Id"], 16)

    def test_rejections_carry_a_trace_id_too(self, server):
        status, _, headers = _post(
            server, b"", _headers(0, 0, **{"X-Repro-Trace-Id": "bad-req-1"}),
        )
        assert status == 400
        assert headers["X-Repro-Trace-Id"] == "bad-req-1"


class TestThreadModePropagation:
    def test_request_spans_share_trace_id_across_server_threads(self, server):
        spans.tracer.reset()
        spans.enable()
        try:
            status, _, _ = _post(
                server, _body(8, 6),
                _headers(8, 6, **{"X-Repro-Trace-Id": "prop-1"}),
            )
            assert status == 200
            recs = [r for r in spans.tracer.snapshot()
                    if r.trace_id == "prop-1"]
        finally:
            spans.disable()
            spans.tracer.reset()
        names = {r.name for r in recs}
        assert "serve.request" in names
        assert "serve.route" in names  # router decision, handler thread
        assert "serve.group" in names  # worker thread, joined via ctx
        req = next(r for r in recs if r.name == "serve.request")
        route = next(r for r in recs if r.name == "serve.route")
        grp = next(r for r in recs if r.name == "serve.group")
        # request -> route -> group: the router span parents the shard work
        assert route.parent_id == req.span_id
        assert grp.parent_id == route.span_id
        assert grp.tid != req.tid  # crossed a thread boundary


class TestEventLogIntegration:
    def test_admission_emits_trace_stamped_events(self, server):
        events.event_log.reset()
        events.enable()
        try:
            _post(server, _body(8, 6),
                  _headers(8, 6, **{"X-Repro-Trace-Id": "ev-1"}))
            recs = events.event_log.drain()
        finally:
            events.disable()
        kinds = {r["kind"] for r in recs if r["trace_id"] == "ev-1"}
        assert "admit" in kinds
        assert "coalesce" in kinds
        assert "dispatch" in kinds
        admit = next(r for r in recs if r["kind"] == "admit"
                     and r["trace_id"] == "ev-1")
        assert "depth" in admit
