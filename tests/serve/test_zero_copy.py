"""Zero-copy shared-memory ingress and the streamed /transpose-file
endpoint: round trips, the segment 4xx taxonomy, and leak-free drains."""

from __future__ import annotations

import http.client
import json

import numpy as np
import pytest

from repro.parallel import shm
from repro.serve import ServeConfig, TransposeServer
from repro.trace.events import event_log


@pytest.fixture
def server():
    srv = TransposeServer(
        ServeConfig(port=0, workers=1, queue_size=32, max_wait_ms=0.5)
    ).start()
    yield srv
    srv.shutdown(timeout=10)


def _post(srv, path, body, headers):
    host, port = srv.address
    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        conn.request("POST", path, body=body, headers=headers)
        resp = conn.getresponse()
        return resp.status, resp.read(), dict(resp.getheaders())
    finally:
        conn.close()


def _segment_post(srv, name, m, n, dtype="float64", **extra):
    headers = {"X-Repro-Rows": str(m), "X-Repro-Cols": str(n),
               "X-Repro-Dtype": dtype, "Content-Type": "application/json"}
    headers.update(extra)
    return _post(
        srv, "/transpose", json.dumps({"segment": name}).encode(), headers
    )


class TestSegmentIngress:
    def test_round_trip_in_place(self, server):
        m, n = 24, 16
        A = np.arange(m * n, dtype=np.float64)
        seg = shm.SharedArray((m * n,), np.float64)
        try:
            seg.array[:] = A
            status, body, _ = _segment_post(server, seg.name, m, n)
            assert status == 200
            ack = json.loads(body)
            assert ack["segment"] == seg.name
            assert ack["rows"] == n and ack["cols"] == m
            # the transpose landed in the segment; nothing crossed the wire
            np.testing.assert_array_equal(
                seg.array.reshape(n, m), A.reshape(m, n).T
            )
        finally:
            seg.destroy()

    def test_multi_tile_segment(self, server):
        m, n, k = 12, 8, 3
        A = np.arange(k * m * n, dtype=np.float32).reshape(k, m, n)
        seg = shm.SharedArray((k * m * n,), np.float32)
        try:
            seg.array[:] = A.ravel()
            status, body, _ = _segment_post(
                server, seg.name, m, n, dtype="float32",
                **{"X-Repro-Batch": str(k)},
            )
            assert status == 200
            np.testing.assert_array_equal(
                seg.array.reshape(k, n, m), A.transpose(0, 2, 1)
            )
        finally:
            seg.destroy()

    def test_missing_segment_404(self, server):
        status, body, _ = _segment_post(server, "repro_definitely_absent", 4, 4)
        assert status == 404
        doc = json.loads(body)
        assert doc["kind"] == "segment-missing"

    def test_undersized_segment_409(self, server):
        seg = shm.SharedArray((8,), np.float64)
        try:
            status, body, _ = _segment_post(server, seg.name, 64, 64)
            assert status == 409
            assert json.loads(body)["kind"] == "segment-mismatch"
        finally:
            seg.destroy()

    def test_malformed_descriptor_400(self, server):
        status, body, _ = _post(
            server, "/transpose", b'{"not_segment": 1}',
            {"X-Repro-Rows": "4", "X-Repro-Cols": "4",
             "Content-Type": "application/json"},
        )
        assert status == 400

    def test_reject_reasons_reach_event_log(self, server):
        event_log.enabled = True
        try:
            _segment_post(server, "repro_definitely_absent", 4, 4)
            small = shm.SharedArray((4,), np.float64)
            try:
                _segment_post(server, small.name, 64, 64)
            finally:
                small.destroy()
            reasons = {
                ev.get("reason") for ev in event_log.snapshot()
                if ev["kind"] == "reject"
            }
            assert {"segment-missing", "segment-mismatch"} <= reasons
        finally:
            event_log.enabled = False

    def test_no_segments_leaked_after_drain(self):
        srv = TransposeServer(ServeConfig(port=0, workers=1)).start()
        m, n = 16, 12
        seg = shm.SharedArray((m * n,), np.float64)
        seg.array[:] = np.arange(m * n, dtype=np.float64)
        status, _, _ = _segment_post(srv, seg.name, m, n)
        assert status == 200
        seg.destroy()
        summary = srv.shutdown(timeout=10)
        assert summary["shm_leaked"] == 0
        assert shm.owned_segments() == []


class TestTransposeFileEndpoint:
    def _post_file(self, srv, payload):
        return _post(
            srv, "/transpose-file", json.dumps(payload).encode(),
            {"Content-Type": "application/json"},
        )

    def test_streams_server_local_file(self, server, tmp_path):
        m, n = 48, 36
        A = np.arange(m * n, dtype=np.int64).reshape(m, n)
        path = tmp_path / "srv.bin"
        A.tofile(path)
        status, body, _ = self._post_file(server, {
            "path": str(path), "rows": m, "cols": n, "dtype": "int64",
            "window_bytes": "64k",
        })
        assert status == 200
        stats = json.loads(body)
        assert stats["bands"] >= 1 and stats["trace_id"]
        got = np.fromfile(path, dtype=np.int64).reshape(n, m)
        np.testing.assert_array_equal(got, A.T)

    def test_band_progress_lands_in_event_log(self, server, tmp_path):
        m, n = 40, 30
        A = np.arange(m * n, dtype=np.float64).reshape(m, n)
        path = tmp_path / "ev.bin"
        A.tofile(path)
        event_log.enabled = True
        try:
            status, body, _ = self._post_file(server, {
                "path": str(path), "rows": m, "cols": n,
                "window_bytes": "16k",
            })
            assert status == 200
            trace_id = json.loads(body)["trace_id"]
            evs = event_log.snapshot()
            phases = [ev["phase"] for ev in evs
                      if ev["kind"] == "stream_file"
                      and ev["trace_id"] == trace_id]
            assert phases == ["start", "done"]
            assert any(ev["kind"] == "stream" for ev in evs)
        finally:
            event_log.enabled = False

    def test_missing_file_404(self, server, tmp_path):
        status, _, _ = self._post_file(server, {
            "path": str(tmp_path / "absent.bin"), "rows": 4, "cols": 4,
        })
        assert status == 404

    def test_size_mismatch_409(self, server, tmp_path):
        path = tmp_path / "short.bin"
        np.zeros(10, dtype=np.float64).tofile(path)
        status, body, _ = self._post_file(server, {
            "path": str(path), "rows": 8, "cols": 8,
        })
        assert status == 409
        assert json.loads(body)["kind"] == "size-mismatch"

    @pytest.mark.parametrize("payload", [
        {"rows": 4, "cols": 4},                                   # no path
        {"path": "/x", "rows": 0, "cols": 4},                     # bad shape
        {"path": "/x", "rows": 4, "cols": 4, "dtype": "object"},  # bad dtype
        {"path": "/x", "rows": 4, "cols": 4, "order": "Q"},       # bad order
        {"path": "/x", "rows": 4, "cols": 4, "algorithm": "x"},   # bad algo
        {"path": "/x", "rows": 4, "cols": 4, "backend": "gpu"},   # bad backend
        {"path": "/x", "rows": 4, "cols": 4, "window_bytes": "q"},
    ])
    def test_bad_params_400(self, server, payload):
        status, _, _ = self._post_file(server, payload)
        assert status == 400

    def test_error_reply_carries_trace_id(self, server, tmp_path):
        status, _, headers = self._post_file(server, {
            "path": str(tmp_path / "absent.bin"), "rows": 4, "cols": 4,
        })
        assert status == 404
        assert headers.get("X-Repro-Trace-Id")
