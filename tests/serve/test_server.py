"""HTTP front end: round trips, error mapping, metrics, graceful shutdown."""

from __future__ import annotations

import http.client
import json

import numpy as np
import pytest

from repro.serve import ServeConfig, TransposeServer
from repro.trace.export import validate_prometheus_text


@pytest.fixture
def server():
    srv = TransposeServer(
        ServeConfig(port=0, workers=1, queue_size=32, max_wait_ms=0.5)
    ).start()
    yield srv
    srv.shutdown(timeout=10)


def _post(srv, body, headers):
    host, port = srv.address
    conn = http.client.HTTPConnection(host, port, timeout=10)
    try:
        conn.request("POST", "/transpose", body=body, headers=headers)
        resp = conn.getresponse()
        return resp.status, resp.read(), dict(resp.getheaders())
    finally:
        conn.close()


def _get(srv, path):
    host, port = srv.address
    conn = http.client.HTTPConnection(host, port, timeout=10)
    try:
        conn.request("GET", path)
        resp = conn.getresponse()
        return resp.status, resp.read()
    finally:
        conn.close()


def _headers(m, n, dtype="float64", **extra):
    h = {"X-Repro-Rows": str(m), "X-Repro-Cols": str(n),
         "X-Repro-Dtype": dtype}
    h.update(extra)
    return h


class TestTransposeEndpoint:
    def test_round_trip_matches_numpy(self, server):
        m, n = 24, 16
        A = np.arange(m * n, dtype=np.float64)
        status, body, headers = _post(server, A.tobytes(), _headers(m, n))
        assert status == 200
        out = np.frombuffer(body, dtype=np.float64).reshape(n, m)
        np.testing.assert_array_equal(out, A.reshape(m, n).T)
        assert headers["X-Repro-Rows"] == str(n)
        assert headers["X-Repro-Cols"] == str(m)

    def test_multi_tile_round_trip(self, server):
        m, n, k = 12, 8, 3
        A = np.arange(k * m * n, dtype=np.float32).reshape(k, m, n)
        status, body, headers = _post(
            server, A.tobytes(),
            _headers(m, n, dtype="float32", **{"X-Repro-Batch": str(k)}),
        )
        assert status == 200
        assert headers["X-Repro-Batch"] == str(k)
        out = np.frombuffer(body, dtype=np.float32).reshape(k, n, m)
        np.testing.assert_array_equal(out, A.transpose(0, 2, 1))

    def test_narrow_dtype_round_trip(self, server):
        m, n = 16, 10
        A = np.arange(m * n, dtype=np.uint8)
        status, body, _ = _post(
            server, A.tobytes(), _headers(m, n, dtype="uint8")
        )
        assert status == 200
        out = np.frombuffer(body, dtype=np.uint8).reshape(n, m)
        np.testing.assert_array_equal(out, A.reshape(m, n).T)

    def test_keepalive_connection_serves_many(self, server):
        host, port = server.address
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            for seed in range(3):
                A = np.full(6 * 4, seed, dtype=np.float64)
                conn.request(
                    "POST", "/transpose", body=A.tobytes(), headers=_headers(6, 4)
                )
                resp = conn.getresponse()
                assert resp.status == 200
                assert len(resp.read()) == A.nbytes
        finally:
            conn.close()


class TestErrorMapping:
    def test_missing_shape_headers_400(self, server):
        status, body, _ = _post(server, b"", {})
        assert status == 400
        assert b"X-Repro-Rows" in body

    def test_bad_dimensions_400(self, server):
        status, _, _ = _post(server, b"", _headers(0, 4))
        assert status == 400

    def test_unknown_dtype_400(self, server):
        status, _, _ = _post(server, b"", _headers(3, 4, dtype="complex_lies"))
        assert status == 400

    @pytest.mark.parametrize("dtype", ["object", "O", "U4", "S8", "V8", "M8[s]"])
    def test_non_numeric_dtype_400(self, server, dtype):
        # 'object' especially: readinto() over PyObject pointers was a
        # remotely triggered interpreter crash before the dtype-kind guard.
        itemsize = np.dtype(dtype).itemsize or 8
        body = b"\x41" * (3 * 4 * itemsize)
        status, reply, _ = _post(server, body, _headers(3, 4, dtype=dtype))
        assert status == 400
        assert b"numeric" in reply
        # The process survived: a well-formed request still round-trips.
        A = np.arange(12, dtype=np.float64)
        status, out, _ = _post(server, A.tobytes(), _headers(3, 4))
        assert status == 200
        np.testing.assert_array_equal(
            np.frombuffer(out, dtype=np.float64).reshape(4, 3),
            A.reshape(3, 4).T,
        )

    def test_bad_order_400(self, server):
        status, _, _ = _post(
            server, b"", _headers(3, 4, **{"X-Repro-Order": "Z"})
        )
        assert status == 400

    def test_bad_batch_400(self, server):
        status, _, _ = _post(
            server, b"x" * 96, _headers(3, 4, **{"X-Repro-Batch": "0"})
        )
        assert status == 400

    def test_wrong_content_length_400(self, server):
        status, body, _ = _post(server, b"x" * 10, _headers(3, 4))
        assert status == 400
        assert b"bytes" in body

    def test_unknown_path_404(self, server):
        status, _, _ = _post(server, b"", {"X-Repro-Rows": "1"})
        assert status == 400  # transpose path with bad headers
        status, _ = _get(server, "/nope")
        assert status == 404

    def test_error_with_unread_body_closes_connection(self, server):
        # A pre-body 400 leaves the request body on the socket; the server
        # must close the connection instead of letting keep-alive parse
        # those bytes as the next request line (desync).
        host, port = server.address
        A = np.arange(12, dtype=np.float64)
        conn = http.client.HTTPConnection(host, port, timeout=10)
        try:
            conn.request(
                "POST", "/transpose", body=A.tobytes(),
                headers=_headers(3, 4, dtype="no_such_dtype"),
            )
            resp = conn.getresponse()
            assert resp.status == 400
            assert resp.getheader("Connection") == "close"
            resp.read()
            # The advertised close makes http.client reconnect; before the
            # fix this follow-up got a garbage reply parsed out of the
            # stale body bytes still sitting on the old connection.
            conn.request(
                "POST", "/transpose", body=A.tobytes(), headers=_headers(3, 4)
            )
            resp = conn.getresponse()
            assert resp.status == 200
            out = np.frombuffer(resp.read(), dtype=np.float64).reshape(4, 3)
            np.testing.assert_array_equal(out, A.reshape(3, 4).T)
        finally:
            conn.close()

    def test_expired_deadline_504(self, server):
        A = np.arange(12, dtype=np.float64)
        status, body, _ = _post(
            server, A.tobytes(),
            _headers(3, 4, **{"X-Repro-Timeout-Ms": "0"}),
        )
        assert status == 504

    def test_expired_at_admission_fails_fast_as_client_deadline(self, server):
        """An already-expired X-Repro-Timeout-Ms must be rejected before
        the request is enqueued — no queue wait, no kernel work — and the
        504 body must say the *client's* deadline expired."""
        from time import perf_counter

        A = np.arange(12, dtype=np.float64)
        t0 = perf_counter()
        status, body, headers = _post(
            server, A.tobytes(),
            _headers(3, 4, **{"X-Repro-Timeout-Ms": "0"}),
        )
        elapsed = perf_counter() - t0
        assert status == 504
        assert json.loads(body)["kind"] == "client-deadline"
        assert b"before admission" in body
        # Fast fail: rejected pre-queue, not after a queue/execute timeout.
        assert elapsed < 0.9
        # Pre-body rejection leaves bytes on the socket -> must close.
        assert headers.get("Connection") == "close"

    def test_serving_timeout_504_is_distinguished(self):
        """A request that was admitted fine but hit the serving-layer
        timeout gets the other 504 flavor: kind="serving-timeout"."""
        srv = TransposeServer(ServeConfig(
            port=0, workers=1, queue_size=32,
            max_wait_ms=5000.0,  # lone request waits for batch-mates...
            request_timeout_s=0.05,  # ...but the server gives up first
        )).start()
        try:
            A = np.arange(12, dtype=np.float64)
            status, body, _ = _post(srv, A.tobytes(), _headers(3, 4))
            assert status == 504
            assert json.loads(body)["kind"] == "serving-timeout"
        finally:
            srv.shutdown(timeout=10)

    def test_queue_full_429_with_retry_after(self):
        # Fill the queue directly (workers not started, nothing drains),
        # then a real HTTP submit must be admission-rejected with a
        # *computed* Retry-After — never the old hardcoded "1".  With no
        # drains observed the backoff is depth-proportional, so a full
        # queue advertises the maximum clamp.
        from repro.serve.queue import RETRY_AFTER_MAX_S, Request

        srv = TransposeServer(ServeConfig(port=0, workers=1, queue_size=1))
        srv._serve_thread = None
        import threading

        srv._serve_thread = threading.Thread(
            target=srv._httpd.serve_forever, kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        srv._serve_thread.start()
        try:
            srv.queue.submit(Request(np.zeros(12), 3, 4))
            A = np.arange(12, dtype=np.float64)
            status, body, headers = _post(srv, A.tobytes(), _headers(3, 4))
            assert status == 429
            assert json.loads(body)["kind"] == "queue-full"
            retry = int(headers.get("Retry-After"))
            assert retry == int(RETRY_AFTER_MAX_S)
            assert srv.queue.rejected_full == 1
        finally:
            srv.queue.close()
            srv._httpd.shutdown()
            srv._httpd.server_close()

    def test_retry_after_scales_with_queue_depth(self):
        # Regression for the hardcoded Retry-After: with an observed drain
        # rate, the advertised backoff must grow with the rejecting
        # queue's depth (depth / drain_rate, clamped).
        from repro.serve.queue import compute_retry_after

        shallow = compute_retry_after(4, 64, drain_rate=2.0)
        deep = compute_retry_after(40, 64, drain_rate=2.0)
        assert deep > shallow
        assert shallow == pytest.approx(2.0)
        assert deep == pytest.approx(20.0)
        # and without any drain signal, deeper queues still back off more
        assert compute_retry_after(
            60, 64, drain_rate=0.0
        ) > compute_retry_after(8, 64, drain_rate=0.0)


class TestIntrospection:
    def test_healthz(self, server):
        status, body = _get(server, "/healthz")
        assert status == 200
        health = json.loads(body)
        assert health["status"] == "ok"
        assert health["queue_maxsize"] == 32
        assert health["workers_alive"] == 1

    def test_metrics_parse_and_families(self, server):
        # Generate some traffic first so serve.* families exist.
        A = np.arange(6 * 4, dtype=np.float64)
        for _ in range(3):
            status, _, _ = _post(server, A.tobytes(), _headers(6, 4))
            assert status == 200
        status, body = _get(server, "/metrics")
        assert status == 200
        text = body.decode()
        stats = validate_prometheus_text(text)
        assert stats["samples"] > 0
        assert "repro_serve_queue_depth" in text
        assert "repro_serve_workers" in text
        assert "repro_serve_batch_size_bucket" in text
        assert "repro_serve_completed_total" in text
        # Latencies share one family, labelled by operation.
        assert "repro_latency_seconds" in text
        assert 'op="serve.e2e"' in text
        assert 'op="serve.queue_wait"' in text
        assert 'op="serve.execute"' in text


class TestShutdown:
    def test_zero_dropped_summary(self):
        srv = TransposeServer(ServeConfig(port=0, workers=1)).start()
        A = np.arange(8 * 6, dtype=np.float64)
        for _ in range(5):
            status, _, _ = _post(srv, A.tobytes(), _headers(8, 6))
            assert status == 200
        summary = srv.shutdown(timeout=10)
        assert summary["accepted"] == 5
        assert summary["responded"] == 5
        assert summary["dropped"] == 0
        assert summary["drained"]

    def test_post_after_shutdown_rejected(self):
        srv = TransposeServer(ServeConfig(port=0, workers=1)).start()
        srv.queue.close()  # draining state: submits now map to 503
        A = np.arange(12, dtype=np.float64)
        status, _, _ = _post(srv, A.tobytes(), _headers(3, 4))
        assert status == 503
        srv.shutdown(timeout=10)
