"""Request lifecycle and bounded-queue admission control."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.serve.queue import (
    CANCELLED,
    CLAIMED,
    DONE,
    FAILED,
    PENDING,
    QueueClosedError,
    QueueFullError,
    Request,
    RequestQueue,
)


def _req(m=3, n=4, tiles=1, **kw):
    return Request(np.arange(tiles * m * n, dtype=np.float64), m, n,
                   tiles=tiles, **kw)


class TestRequestLifecycle:
    def test_initial_state(self):
        r = _req()
        assert r.state == PENDING
        assert not r.done()
        assert r.shape_key == (3, 4, "C", "float64")

    def test_claim_then_fulfill(self):
        r = _req()
        assert r.claim()
        assert r.state == CLAIMED
        out = np.arange(12.0)
        r.fulfill(out)
        assert r.state == DONE
        assert r.wait(timeout=0) is out

    def test_claim_is_idempotent_while_claimed(self):
        # A worker retrying a transient failure re-claims the same request.
        r = _req()
        assert r.claim()
        assert r.claim()

    def test_cancel_beats_claim(self):
        r = _req()
        assert r.cancel()
        assert r.state == CANCELLED
        assert not r.claim()
        with pytest.raises(Exception, match="cancelled"):
            r.wait(timeout=0)

    def test_cancel_after_claim_fails(self):
        r = _req()
        r.claim()
        assert not r.cancel()
        assert r.state == CLAIMED

    def test_fail_delivers_error_to_waiter(self):
        r = _req()
        r.claim()
        r.fail(ValueError("boom"))
        assert r.state == FAILED
        with pytest.raises(ValueError, match="boom"):
            r.wait(timeout=0)

    def test_terminal_states_are_sticky(self):
        r = _req()
        r.claim()
        r.fulfill(np.zeros(12))
        r.fail(ValueError("late"))
        assert r.state == DONE
        assert r.error is None

    def test_wait_timeout_raises(self):
        r = _req()
        with pytest.raises(TimeoutError):
            r.wait(timeout=0.01)

    def test_wait_unblocks_across_threads(self):
        r = _req()
        result = np.arange(12.0)

        def worker():
            r.claim()
            r.fulfill(result)

        t = threading.Thread(target=worker)
        t.start()
        assert r.wait(timeout=5) is result
        t.join()

    def test_deadline_expiry(self):
        from time import monotonic

        assert not _req().expired
        assert _req(deadline=monotonic() - 0.001).expired
        assert not _req(deadline=monotonic() + 60).expired

    def test_tiles_validation(self):
        with pytest.raises(ValueError, match="tiles"):
            _req(tiles=0)
        assert _req(tiles=3).tiles == 3


class TestRequestQueue:
    def test_fifo_order(self):
        q = RequestQueue(maxsize=8)
        reqs = [_req() for _ in range(3)]
        for r in reqs:
            q.submit(r)
        assert [q.get(timeout=0) for _ in range(3)] == reqs

    def test_admission_reject_when_full(self):
        q = RequestQueue(maxsize=2)
        q.submit(_req())
        q.submit(_req())
        with pytest.raises(QueueFullError):
            q.submit(_req())
        assert q.rejected_full == 1
        assert q.depth == 2

    def test_submit_after_close_raises(self):
        q = RequestQueue(maxsize=2)
        q.close()
        with pytest.raises(QueueClosedError):
            q.submit(_req())
        assert q.rejected_closed == 1

    def test_close_drains_backlog_then_signals_empty(self):
        # "Drain, don't drop": queued requests survive close().
        q = RequestQueue(maxsize=4)
        r = q.submit(_req())
        q.close()
        assert q.get(timeout=0) is r
        assert q.get(timeout=0) is None

    def test_get_timeout_returns_none(self):
        q = RequestQueue(maxsize=2)
        assert q.get(timeout=0.01) is None

    def test_get_wakes_on_submit(self):
        q = RequestQueue(maxsize=2)
        r = _req()
        got = []

        def consumer():
            got.append(q.get(timeout=5))

        t = threading.Thread(target=consumer)
        t.start()
        q.submit(r)
        t.join(timeout=5)
        assert got == [r]

    def test_drain_nowait_respects_limit(self):
        q = RequestQueue(maxsize=8)
        reqs = [q.submit(_req()) for _ in range(5)]
        first = q.drain_nowait(max_items=2)
        rest = q.drain_nowait()
        assert first == reqs[:2]
        assert rest == reqs[2:]
        assert q.drain_nowait() == []

    def test_stats_snapshot(self):
        q = RequestQueue(maxsize=3)
        q.submit(_req())
        s = q.stats()
        assert s["depth"] == 1
        assert s["maxsize"] == 3
        assert s["submitted"] == 1
        assert not s["closed"]
        assert len(q) == 1

    def test_maxsize_validation(self):
        with pytest.raises(ValueError):
            RequestQueue(maxsize=0)


class TestAdmissionDepthSnapshot:
    def test_admit_depth_is_recorded_under_the_queue_lock(self):
        q = RequestQueue(maxsize=8)
        depths = [q.submit(_req()).admit_depth for _ in range(3)]
        assert depths == [1, 2, 3]

    def test_admit_depth_survives_an_immediate_drain(self):
        """Regression: the admit event used to re-read queue.depth after
        submit returned, racing with worker drains — a request admitted
        into a deep queue could be logged at depth 0.  The snapshot taken
        at admission is immune."""
        q = RequestQueue(maxsize=8)
        first = q.submit(_req())
        second = q.submit(_req())
        q.drain_nowait()  # a worker empties the queue immediately
        assert q.depth == 0
        assert first.admit_depth == 1
        assert second.admit_depth == 2


class TestDrainRateAndRetryAfter:
    def test_drain_rate_counts_recent_pops(self):
        q = RequestQueue(maxsize=8)
        for _ in range(5):
            q.submit(_req())
        assert q.drain_rate() == 0.0  # nothing drained yet
        q.drain_nowait()
        assert q.drain_rate() == pytest.approx(5 / q.DRAIN_WINDOW_S)

    def test_drain_rate_window_expires(self):
        q = RequestQueue(maxsize=8)
        q.submit(_req())
        q.get(timeout=0.1)
        assert q.drain_rate() > 0.0
        assert q.drain_rate(now=1e9) == 0.0  # far future: window empty

    def test_retry_after_tracks_depth_over_drain_rate(self):
        from repro.serve.queue import (
            RETRY_AFTER_MAX_S,
            RETRY_AFTER_MIN_S,
            compute_retry_after,
        )

        # depth/drain_rate inside the clamp band passes through
        assert compute_retry_after(10, 64, 2.0) == pytest.approx(5.0)
        # clamped at both ends
        assert compute_retry_after(1, 64, 100.0) == RETRY_AFTER_MIN_S
        assert compute_retry_after(10_000, 64, 0.1) == RETRY_AFTER_MAX_S
        # no drain signal: depth-proportional between the clamps
        empty = compute_retry_after(0, 64, 0.0)
        half = compute_retry_after(32, 64, 0.0)
        full = compute_retry_after(64, 64, 0.0)
        assert empty == RETRY_AFTER_MIN_S
        assert full == RETRY_AFTER_MAX_S
        assert empty < half < full

    def test_queue_retry_after_uses_live_state(self):
        q = RequestQueue(maxsize=4)
        for _ in range(4):
            q.submit(_req())
        # no drains observed: full queue advertises the max clamp
        assert q.retry_after_s() == 30.0
