"""Sharded serving tier: ring stability, quotas, failover, correctness.

The four suites mirror the router's four promises (serve/router.py):

* the consistent-hash ring moves only ``~1/N`` of the key space on a
  membership change,
* per-tenant token buckets reject over-quota traffic with a *computed*
  backoff (weighted admission),
* evicting a dead shard loses no admitted request,
* a multi-shard server returns byte-exact transposes under concurrency.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.serve.queue import QueueFullError, Request
from repro.serve.router import (
    HashRing,
    QuotaExceededError,
    ShardRouter,
    TenantQuotas,
    TokenBucket,
)


def _req(m=3, n=4, tiles=1, **kw):
    return Request(np.arange(tiles * m * n, dtype=np.float64), m, n,
                   tiles=tiles, **kw)


def _keys(count):
    """A spread of realistic coalescing keys."""
    return [
        (64 + i, 48 + 2 * i, "C" if i % 2 else "F",
         "float64" if i % 3 else "uint8")
        for i in range(count)
    ]


class TestHashRing:
    def test_lookup_is_deterministic(self):
        ring = HashRing(range(4))
        key = (256, 384, "C", "uint8")
        assert ring.lookup(key) == ring.lookup(key)
        # and independent of construction order
        other = HashRing([3, 1, 0, 2])
        assert ring.lookup(key) == other.lookup(key)

    def test_keys_spread_over_all_shards(self):
        ring = HashRing(range(4))
        owners = {ring.lookup(k) for k in _keys(200)}
        assert owners == {0, 1, 2, 3}

    def test_remove_moves_only_the_dead_shards_keys(self):
        """Consistent hashing's defining property: keys not owned by the
        removed shard keep their owner."""
        ring = HashRing(range(5))
        keys = _keys(500)
        before = {k: ring.lookup(k) for k in keys}
        ring.remove(2)
        after = {k: ring.lookup(k) for k in keys}
        for k in keys:
            if before[k] != 2:
                assert after[k] == before[k]
        assert all(after[k] != 2 for k in keys)

    def test_add_claims_about_one_nth_of_the_space(self):
        ring = HashRing(range(4))
        keys = _keys(1000)
        before = {k: ring.lookup(k) for k in keys}
        ring.add(4)
        after = {k: ring.lookup(k) for k in keys}
        moved = sum(1 for k in keys if before[k] != after[k])
        # everything that moved, moved TO the new shard
        assert all(after[k] == 4 for k in keys if before[k] != after[k])
        # ~1/5 of keys move; allow generous slack for hash variance
        assert 0.08 <= moved / len(keys) <= 0.35

    def test_membership_errors(self):
        ring = HashRing([0, 1])
        with pytest.raises(ValueError):
            ring.add(0)
        with pytest.raises(ValueError):
            ring.remove(7)
        ring.remove(0)
        ring.remove(1)
        with pytest.raises(LookupError):
            ring.lookup((3, 4, "C", "float64"))


class TestQuotas:
    def test_bucket_burst_then_computed_wait(self):
        b = TokenBucket(rate=10.0, burst=20.0, now=0.0)
        assert b.take(20.0, now=0.0) == 0.0  # full burst spends cleanly
        wait = b.take(5.0, now=0.0)
        assert wait == pytest.approx(0.5)  # 5 tokens at 10/s
        # refill: 1s later the 5-token request fits again
        assert b.take(5.0, now=1.0) == 0.0

    def test_quota_reject_carries_computed_retry_after(self):
        q = TenantQuotas(rate=10.0, burst_s=1.0)
        q.admit("t", 10.0, now=0.0)  # exactly the burst
        with pytest.raises(QuotaExceededError) as ei:
            q.admit("t", 10.0, now=0.0)
        assert ei.value.tenant == "t"
        assert ei.value.retry_after_s == pytest.approx(1.0)
        assert q.rejected["t"] == 1

    def test_weighted_admission(self):
        """A weight-4 tenant's bucket holds 4x the tokens of a weight-1
        tenant: same instant, same demand, different outcomes."""
        q = TenantQuotas(rate=10.0, burst_s=1.0, weights={"gold": 4.0})
        q.admit("gold", 40.0, now=0.0)
        with pytest.raises(QuotaExceededError):
            q.admit("free", 40.0, now=0.0)

    def test_disabled_quotas_admit_everything(self):
        q = TenantQuotas(rate=None)
        for _ in range(100):
            q.admit("anyone", 1e9)
        assert q.stats()["enabled"] is False

    def test_router_submit_taxonomy(self):
        """Quota rejections never consume queue capacity; queue-full
        rejections carry the drain-rate-computed backoff."""
        router = ShardRouter(1, queue_size=2, workers=1,
                             tenant_rate=4.0, tenant_burst_s=1.0)
        router.submit(_req(tiles=4), tenant="t")  # spends the whole burst
        with pytest.raises(QuotaExceededError) as ei:
            router.submit(_req(tiles=4), tenant="t")
        assert ei.value.retry_after_s > 0.0
        assert router.depth == 1  # the rejected request never enqueued
        # an unthrottled tenant can still fill the queue...
        router.submit(_req(), tenant="other")
        with pytest.raises(QueueFullError) as full:
            router.submit(_req(), tenant="other")
        # ...and the full error was annotated with a computed backoff
        assert full.value.retry_after_s >= 1.0


class TestFailover:
    def test_evict_resubmits_backlog_without_loss(self):
        """Everything a dead shard held moves to survivors: admitted
        requests are never dropped by an eviction."""
        router = ShardRouter(4, queue_size=64, workers=1)
        reqs = [_req(m=8 + i, n=6 + i) for i in range(32)]
        placed = {}
        for r in reqs:
            sid, depth = router.submit(r)
            placed[r.id] = sid
            assert depth >= 1
        victim = placed[reqs[0].id]
        held = [r for r in reqs if placed[r.id] == victim]
        assert held  # the victim shard owned some backlog
        assert router.evict(victim)
        assert victim not in router.shards
        assert router.failover_resubmitted == len(held)
        assert router.failover_failed == 0
        # every request is now queued on a surviving shard
        total = sum(s.queue.depth for s in router.shards.values())
        assert total == len(reqs)
        # the ring no longer routes anything to the victim
        assert all(
            router.shard_for_key(r.shape_key) != victim for r in reqs
        )
        assert router.evict(victim) is False  # second eviction is a no-op

    def test_check_health_evicts_dead_started_shard(self):
        router = ShardRouter(2, queue_size=8, workers=1)
        # unstarted shards are not eviction candidates
        assert router.check_health() == []
        sid, _ = router.submit(_req())
        shard = router.shards[sid]
        # simulate a crashed shard: mark started with no live workers
        shard.started = True
        assert shard.pool.alive == 0
        evicted = router.check_health()
        assert evicted == [sid]
        assert sid in router.evicted
        # the backlog failed over to the survivor
        other = next(iter(router.shards.values()))
        assert other.queue.depth == 1

    def test_evicting_the_last_shard_fails_waiters(self):
        router = ShardRouter(1, queue_size=8, workers=1)
        r = _req()
        router.submit(r)
        router.evict(0)
        assert router.failover_failed == 1
        with pytest.raises(LookupError):
            r.wait(timeout=0.1)

    def test_shutdown_merges_shard_summaries(self):
        router = ShardRouter(3, queue_size=32, workers=1).start()
        reqs = [_req(m=5 + i, n=7 + i) for i in range(9)]
        for r in reqs:
            router.submit(r)
        for r in reqs:
            out = r.wait(timeout=10.0)
            assert out.size == r.m * r.n
        summary = router.shutdown(timeout=10.0)
        assert summary["drained"] is True
        assert summary["requests_served"] == len(reqs)
        assert summary["shards"] == 3
        assert summary["shards_evicted"] == 0


class TestShardedExecution:
    def test_concurrent_submits_are_byte_exact_across_four_shards(self):
        """The differential test: 4 shards, many threads, every response
        equal to the direct numpy transpose."""
        router = ShardRouter(4, queue_size=256, workers=1).start()
        rng = np.random.default_rng(7)
        shapes = [(8, 6), (5, 9), (12, 4), (7, 7), (16, 3), (6, 11)]
        failures: list[str] = []

        def one(i: int) -> None:
            m, n = shapes[i % len(shapes)]
            a = rng.integers(0, 255, size=m * n).astype(np.float64)
            r = Request(a.copy(), m, n)
            router.submit(r)
            out = r.wait(timeout=10.0)
            if not np.array_equal(
                np.asarray(out).reshape(n, m), a.reshape(m, n).T
            ):
                failures.append(f"mismatch for {m}x{n} (request {i})")

        threads = [threading.Thread(target=one, args=(i,))
                   for i in range(48)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        try:
            assert not failures
            # the workload touched more than one shard
            active = [s for s in router.shards.values() if s.routed]
            assert len(active) >= 2
            # per-shard affinity: repeats of a shape hit the shard that
            # already planned it
            for s in active:
                assert s.routed >= s.affinity_hits >= s.routed - len(shapes)
        finally:
            router.shutdown(timeout=10.0)

    def test_same_shape_always_lands_on_one_shard(self):
        router = ShardRouter(4, queue_size=64, workers=1)
        sids = {router.submit(_req(m=9, n=13))[0] for _ in range(16)}
        assert len(sids) == 1
        (sid,) = sids
        shard = router.shards[sid]
        assert shard.routed == 16
        assert shard.affinity_hits == 15  # all but the first submit
        assert shard.affinity_rate == pytest.approx(15 / 16)
