"""Shape-coalescing batcher: grouping policy and execution semantics."""

from __future__ import annotations

from time import monotonic

import numpy as np
import pytest

from repro.serve.batcher import ShapeBatcher
from repro.serve.queue import (
    DeadlineExceededError,
    Request,
    RequestQueue,
)


def _req(m, n, dtype=np.float64, tiles=1, seed=0, **kw):
    rng = np.random.default_rng(seed)
    buf = (rng.random(tiles * m * n) * 100).astype(dtype)
    return Request(buf, m, n, tiles=tiles, **kw)


def _expected(r: Request) -> np.ndarray:
    tiles = r.buf.reshape(r.tiles, r.m, r.n)
    return np.ascontiguousarray(tiles.transpose(0, 2, 1)).reshape(-1)


def _batcher(maxsize=64, max_batch=8, max_wait_s=0.0):
    q = RequestQueue(maxsize=maxsize)
    return q, ShapeBatcher(q, max_batch=max_batch, max_wait_s=max_wait_s)


class TestGrouping:
    def test_same_shape_requests_coalesce(self):
        q, b = _batcher()
        reqs = [q.submit(_req(6, 4, seed=i)) for i in range(5)]
        group = b.next_group(timeout=0.2)
        assert group is not None
        assert group.requests == reqs
        assert group.key == (6, 4, "C", "float64")

    def test_mixed_shapes_split_into_lanes(self):
        q, b = _batcher()
        a = [q.submit(_req(6, 4, seed=i)) for i in range(2)]
        c = [q.submit(_req(3, 5, seed=i)) for i in range(2)]
        q.submit(a[0].__class__(a[0].buf, 6, 4))  # same shape as lane a
        groups = [b.next_group(timeout=0.2) for _ in range(2)]
        keys = {g.key for g in groups}
        assert keys == {(6, 4, "C", "float64"), (3, 5, "C", "float64")}
        by_key = {g.key: g for g in groups}
        assert by_key[(6, 4, "C", "float64")].requests[:2] == a
        assert by_key[(3, 5, "C", "float64")].requests == c

    def test_dtype_splits_lanes(self):
        q, b = _batcher()
        f64 = q.submit(_req(6, 4, dtype=np.float64))
        f32 = q.submit(_req(6, 4, dtype=np.float32))
        g1 = b.next_group(timeout=0.2)
        g2 = b.next_group(timeout=0.2)
        assert {g1.requests[0], g2.requests[0]} == {f64, f32}
        assert len(g1) == len(g2) == 1

    def test_full_lane_dispatches_without_wait(self):
        q, b = _batcher(max_batch=4, max_wait_s=60.0)
        for i in range(4):
            q.submit(_req(6, 4, seed=i))
        t0 = monotonic()
        group = b.next_group(timeout=5)
        assert monotonic() - t0 < 1.0
        assert len(group) == 4

    def test_partial_lane_waits_for_ripeness(self):
        q, b = _batcher(max_batch=8, max_wait_s=10.0)
        q.submit(_req(6, 4))
        assert b.next_group(timeout=0.05) is None
        assert b.pending == 1

    def test_lane_fullness_counts_tiles(self):
        # Two 2-tile requests fill a max_batch=4 lane.
        q, b = _batcher(max_batch=4, max_wait_s=60.0)
        q.submit(_req(6, 4, tiles=2, seed=1))
        q.submit(_req(6, 4, tiles=2, seed=2))
        group = b.next_group(timeout=1)
        assert group is not None
        assert len(group) == 2
        assert group.tiles == 4

    def test_oversized_request_dispatches_alone(self):
        q, b = _batcher(max_batch=2, max_wait_s=60.0)
        q.submit(_req(6, 4, tiles=5))
        group = b.next_group(timeout=1)
        assert len(group) == 1
        assert group.tiles == 5

    def test_close_flushes_unripe_lanes(self):
        q, b = _batcher(max_batch=8, max_wait_s=60.0)
        q.submit(_req(6, 4))
        q.close()
        group = b.next_group(timeout=1)
        assert group is not None and len(group) == 1
        assert b.next_group(timeout=0) is None

    def test_constructor_validation(self):
        q = RequestQueue()
        with pytest.raises(ValueError):
            ShapeBatcher(q, max_batch=0)
        with pytest.raises(ValueError):
            ShapeBatcher(q, max_wait_s=-1)


class TestExecution:
    def test_batch_execution_matches_numpy(self):
        q, b = _batcher()
        reqs = [q.submit(_req(12, 8, seed=i)) for i in range(6)]
        group = b.next_group(timeout=0.2)
        assert b.execute_group(group) == 6
        for r in reqs:
            np.testing.assert_array_equal(r.wait(timeout=0), _expected(r))

    def test_singleton_fallback_matches_numpy(self):
        q, b = _batcher()
        r = q.submit(_req(9, 7, seed=3))
        group = b.next_group(timeout=0.2)
        assert len(group) == 1
        assert b.execute_group(group) == 1
        np.testing.assert_array_equal(r.wait(timeout=0), _expected(r))

    def test_multi_tile_request_matches_numpy(self):
        q, b = _batcher()
        solo = q.submit(_req(12, 8, tiles=3, seed=5))
        mixed = q.submit(_req(12, 8, tiles=1, seed=6))
        group = b.next_group(timeout=0.2)
        assert group.tiles == 4
        assert b.execute_group(group) == 2
        np.testing.assert_array_equal(solo.wait(timeout=0), _expected(solo))
        np.testing.assert_array_equal(mixed.wait(timeout=0), _expected(mixed))

    def test_input_buffers_never_mutated(self):
        q, b = _batcher()
        reqs = [q.submit(_req(6, 4, seed=i)) for i in range(3)]
        originals = [r.buf.copy() for r in reqs]
        b.execute_group(b.next_group(timeout=0.2))
        for r, orig in zip(reqs, originals):
            np.testing.assert_array_equal(r.buf, orig)

    def test_expired_request_skipped_not_executed(self):
        q, b = _batcher()
        dead = q.submit(_req(6, 4, deadline=monotonic() - 0.01))
        live = q.submit(_req(6, 4, seed=1))
        group = b.next_group(timeout=0.2)
        assert b.execute_group(group) == 1
        with pytest.raises(DeadlineExceededError):
            dead.wait(timeout=0)
        np.testing.assert_array_equal(live.wait(timeout=0), _expected(live))

    def test_cancelled_request_skipped(self):
        q, b = _batcher()
        gone = q.submit(_req(6, 4))
        live = q.submit(_req(6, 4, seed=1))
        gone.cancel()
        group = b.next_group(timeout=0.2)
        assert b.execute_group(group) == 1
        np.testing.assert_array_equal(live.wait(timeout=0), _expected(live))

    def test_invalid_member_fails_alone(self):
        q, b = _batcher()
        # Wrong element count for the claimed shape: rejected per-request.
        bad = q.submit(Request(np.zeros(11), 6, 4))
        good = q.submit(_req(6, 4, seed=2))
        group = b.next_group(timeout=0.2)
        assert b.execute_group(group) == 1
        with pytest.raises(ValueError, match="elements"):
            bad.wait(timeout=0)
        np.testing.assert_array_equal(good.wait(timeout=0), _expected(good))

    def test_execution_failure_leaves_requests_retryable(self, monkeypatch):
        q, b = _batcher()
        reqs = [q.submit(_req(6, 4, seed=i)) for i in range(3)]
        group = b.next_group(timeout=0.2)

        import repro.serve.batcher as batcher_mod

        real = batcher_mod.batched_transpose_inplace
        calls = {"n": 0}

        def flaky(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient")
            return real(*args, **kwargs)

        monkeypatch.setattr(batcher_mod, "batched_transpose_inplace", flaky)
        with pytest.raises(RuntimeError, match="transient"):
            b.execute_group(group)
        # Nothing fulfilled, inputs intact: the retry contract.
        assert all(not r.done() for r in reqs)
        assert b.execute_group(group) == 3
        for r in reqs:
            np.testing.assert_array_equal(r.wait(timeout=0), _expected(r))

    def test_retry_does_not_double_count_terminal_requests(self, monkeypatch):
        # A group re-executed after a transient failure must not re-count
        # requests that reached a terminal state in the first attempt:
        # expired ones would re-increment serve.expired, and failed ones
        # (claim() returning False) would be miscounted as cancelled.
        from repro.runtime import metrics

        monkeypatch.setattr(metrics.registry, "enabled", True)
        q, b = _batcher()
        dead = q.submit(_req(6, 4, deadline=monotonic() - 0.01))
        bad = q.submit(Request(np.zeros(11), 6, 4))  # wrong element count
        live = [q.submit(_req(6, 4, seed=i)) for i in range(2)]
        group = b.next_group(timeout=0.2)

        import repro.serve.batcher as batcher_mod

        real = batcher_mod.batched_transpose_inplace
        calls = {"n": 0}

        def flaky(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise RuntimeError("transient")
            return real(*args, **kwargs)

        monkeypatch.setattr(batcher_mod, "batched_transpose_inplace", flaky)

        def counters():
            snap = metrics.registry.snapshot()["counters"]
            return {
                k: snap.get(f"serve.{k}", 0)
                for k in ("expired", "skipped_cancelled", "rejected_invalid")
            }

        before = counters()
        with pytest.raises(RuntimeError, match="transient"):
            b.execute_group(group)
        after_first = counters()
        assert after_first["expired"] == before["expired"] + 1
        assert after_first["rejected_invalid"] == before["rejected_invalid"] + 1

        assert b.execute_group(group) == 2  # the retry serves only the live pair
        after_retry = counters()
        assert after_retry == after_first  # terminal requests not re-counted
        for r in live:
            np.testing.assert_array_equal(r.wait(timeout=0), _expected(r))
        with pytest.raises(DeadlineExceededError):
            dead.wait(timeout=0)
        with pytest.raises(ValueError):
            bad.wait(timeout=0)
