"""Process-mode serving: shared-memory staging, crash recovery, metrics merge.

The worker pool's ``mode="process"`` routes every batched group through a
:class:`~repro.parallel.mp.ProcessWorkerHost` — the group stages into one
shared-memory segment, a worker process transposes it through its own plan
cache, and the worker's metrics snapshot merges back into the parent
registry.  These tests pin the three contracts that make that safe:
byte-identical results, nothing-fulfilled-on-failure (so retry-once works
even when the failure is a dead process), and zero leaked segments.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.parallel.mp import ProcessWorkerHost, WorkerCrashedError
from repro.parallel.shm import owned_segments
from repro.runtime import metrics
from repro.serve.batcher import ShapeBatcher
from repro.serve.queue import FAILED, Request, RequestQueue
from repro.serve.workers import WorkerPool


def _req(m=8, n=6, seed=0, tiles=1, dtype=np.float64):
    rng = np.random.default_rng(seed)
    buf = (rng.random(tiles * m * n) * 100).astype(dtype)
    return Request(buf, m, n, tiles=tiles)


def _expected(r: Request) -> np.ndarray:
    tiles = r.buf.reshape(r.tiles, r.m, r.n)
    return np.ascontiguousarray(tiles.transpose(0, 2, 1)).reshape(-1)


def _stack(workers=1, max_batch=8, max_wait_s=0.001, host=None):
    q = RequestQueue(maxsize=256)
    b = ShapeBatcher(q, max_batch=max_batch, max_wait_s=max_wait_s)
    pool = WorkerPool(b, workers, poll_s=0.01, mode="process", host=host)
    return q, b, pool


@pytest.fixture(scope="module")
def host():
    """One persistent process host for the module (pool startup is slow)."""
    h = ProcessWorkerHost(1)
    yield h
    h.shutdown()


class TestProcessServing:
    def test_concurrent_clients_differential(self, host):
        q, _, pool = _stack(workers=2, host=host)
        shapes = [(8, 6), (5, 9), (12, 4)]
        results = {}
        lock = threading.Lock()

        def client(i):
            m, n = shapes[i % len(shapes)]
            r = _req(m, n, seed=i, tiles=1 + i % 3)
            q.submit(r)
            out = r.wait(timeout=60)
            with lock:
                results[i] = (r, out.copy())

        with pool:
            threads = [
                threading.Thread(target=client, args=(i,)) for i in range(12)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
        assert len(results) == 12
        for r, out in results.values():
            np.testing.assert_array_equal(out, _expected(r))
        assert owned_segments() == []

    def test_narrow_dtype_batch(self, host):
        # uint8 image tiles — the workload the mp backend exists for.
        q, _, pool = _stack(workers=1, host=host)
        reqs = [q.submit(_req(16, 24, seed=i, dtype=np.uint8)) for i in range(6)]
        with pool:
            for r in reqs:
                out = r.wait(timeout=60)
                assert out.tobytes() == _expected(r).tobytes()

    def test_worker_metrics_merge_into_parent(self, host):
        was_enabled = metrics.is_enabled()
        metrics.reset()
        metrics.enable()
        try:
            q, _, pool = _stack(workers=1, host=host)
            r = q.submit(_req(seed=3))
            with pool:
                r.wait(timeout=60)
            snap = metrics.snapshot()
        finally:
            if not was_enabled:
                metrics.disable()
            metrics.reset()
        # The kernel ran in the child; its op counter only exists in the
        # parent snapshot because the merge happened.
        counters = snap.get("counters", {})
        assert counters.get("batched_transpose_inplace.calls", 0) >= 1, (
            sorted(counters)
        )
        assert "batched_transpose_inplace" in snap.get("timers", {})


class TestCrashRecovery:
    def test_killed_worker_retries_once_and_succeeds(self, tmp_path):
        """A worker dying mid-batch (os._exit) must fulfill nothing, leave
        inputs intact, and succeed on the pool's single retry."""
        flag = tmp_path / "die-once"
        flag.write_text("x")
        host = ProcessWorkerHost(1, fault_flag=str(flag))
        try:
            q, _, pool = _stack(workers=1, host=host)
            r = _req(seed=11, tiles=2)
            original = r.buf.copy()
            q.submit(r)
            with pool:
                out = r.wait(timeout=60)
            np.testing.assert_array_equal(out, _expected(r))
            np.testing.assert_array_equal(r.buf, original)  # inputs untouched
            assert pool.retries == 1
            assert pool.group_failures == 0
            assert owned_segments() == []
        finally:
            host.shutdown()

    def test_persistent_crash_fails_group_nothing_fulfilled(self):
        host = ProcessWorkerHost(1, fault_flag="always")
        try:
            q, _, pool = _stack(workers=1, host=host)
            r = _req(seed=5)
            original = r.buf.copy()
            q.submit(r)
            pool.start()
            with pytest.raises(WorkerCrashedError):
                r.wait(timeout=60)
            assert r.state == FAILED
            np.testing.assert_array_equal(r.buf, original)
            summary = pool.shutdown(timeout=30)
            assert summary["group_failures"] == 1
            assert summary["retries"] == 1
            assert owned_segments() == []
        finally:
            host.shutdown()

    def test_host_pool_survives_crash(self, tmp_path):
        """After a crash the rebuilt pool serves the next group normally."""
        flag = tmp_path / "die-once-2"
        flag.write_text("x")
        host = ProcessWorkerHost(1, fault_flag=str(flag))
        try:
            q, _, pool = _stack(workers=1, host=host)
            with pool:
                r1 = q.submit(_req(seed=1))
                np.testing.assert_array_equal(r1.wait(timeout=60), _expected(r1))
                r2 = q.submit(_req(seed=2))
                np.testing.assert_array_equal(r2.wait(timeout=60), _expected(r2))
        finally:
            host.shutdown()


class TestPoolOwnsHostLifecycle:
    def test_pool_creates_and_shuts_down_host(self):
        q, b, _ = _stack()
        pool = WorkerPool(b, 1, poll_s=0.01, mode="process")
        r = q.submit(_req(seed=9))
        with pool:
            np.testing.assert_array_equal(r.wait(timeout=60), _expected(r))
        assert pool._host is not None
        assert pool._host.executor._pool is None  # shut down with the pool
        assert owned_segments() == []

    def test_mode_validated(self):
        _, b, _ = _stack()
        with pytest.raises(ValueError):
            WorkerPool(b, 1, mode="fiber")
