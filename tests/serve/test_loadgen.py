"""Load generator: mix parsing, arrival process, report math, tiny e2e run."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve import ServeConfig, TransposeServer
from repro.serve.loadgen import (
    LoadtestReport,
    ShapeMix,
    format_report,
    measure_ceiling_rps,
    measure_coalesced_rps,
    measure_naive_rps,
    parse_shape_mix,
    poisson_arrivals,
    run_loadtest,
)


class TestShapeMix:
    def test_parse_normalizes_weights(self):
        mix = parse_shape_mix("128x192:3,64x96:1")
        assert mix == [ShapeMix(128, 192, 0.75), ShapeMix(64, 96, 0.25)]

    def test_parse_default_weight(self):
        mix = parse_shape_mix("8x6")
        assert mix == [ShapeMix(8, 6, 1.0)]

    def test_parse_skips_empty_entries(self):
        assert len(parse_shape_mix("8x6, ,4x2")) == 2

    @pytest.mark.parametrize("spec", ["", "8y6", "8x6:oops", "x6", ","])
    def test_parse_rejects_bad_specs(self, spec):
        with pytest.raises(ValueError):
            parse_shape_mix(spec)

    def test_parse_rejects_zero_weight_sum(self):
        with pytest.raises(ValueError, match="sum"):
            parse_shape_mix("8x6:0")


class TestPoissonArrivals:
    def test_seeded_and_bounded(self):
        rng = np.random.default_rng(42)
        a = poisson_arrivals(100.0, 2.0, rng)
        b = poisson_arrivals(100.0, 2.0, np.random.default_rng(42))
        np.testing.assert_array_equal(a, b)
        assert a.min() > 0
        assert a.max() < 2.0
        assert np.all(np.diff(a) >= 0)
        # Poisson(100/s over 2s) -> ~200 arrivals, loosely.
        assert 120 < len(a) < 300

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            poisson_arrivals(0, 1.0, np.random.default_rng(0))


class TestReportMath:
    def _report(self, **kw):
        base = dict(
            url="inproc", duration_s=1.0, offered_rate=100.0,
            shapes=[ShapeMix(8, 6, 1.0)], dtype="float64",
        )
        base.update(kw)
        return LoadtestReport(**base)

    def test_efficiency_and_speedup(self):
        r = self._report(
            achieved_rps=60.0, ceiling_rps=100.0,
            coalesced_rps=90.0, naive_rps=30.0,
        )
        assert r.efficiency == pytest.approx(0.6)
        assert r.batched_speedup == pytest.approx(3.0)

    def test_zero_references_do_not_divide_by_zero(self):
        r = self._report()
        assert r.efficiency == 0.0
        assert r.batched_speedup == 0.0

    def test_as_dict_round_trips_fields(self):
        r = self._report(tiles=4, completed=10, achieved_rps=40.0)
        d = r.as_dict()
        assert d["tiles"] == 4
        assert d["completed"] == 10
        assert d["achieved_rps"] == 40.0
        assert d["shapes"] == ["8x6:1.000"]
        assert "efficiency" in d and "batched_speedup" in d

    def test_format_report_mentions_key_lines(self):
        r = self._report(
            tiles=2, completed=5, achieved_rps=10.0,
            ceiling_rps=20.0, coalesced_rps=15.0, naive_rps=5.0,
        )
        text = format_report(r)
        assert "matrices/s" in text
        assert "tiles/request=2" in text
        assert "efficiency 50.0%" in text
        assert "speedup 3.00x" in text

    def test_format_report_without_reference(self):
        text = format_report(self._report(completed=5))
        assert "ceiling" not in text
        assert "completed 5 ok requests" in text


class TestReferenceMeasurements:
    def test_reference_rates_sane_and_ordered(self):
        # Quick (50ms each) sanity: all positive, ceiling >= coalesced,
        # and both comfortably above the plan-per-request naive path.
        kw = dict(seconds=0.05)
        ceiling = measure_ceiling_rps(32, 48, "float64", batch=16, **kw)
        coalesced = measure_coalesced_rps(32, 48, "float64", batch=16, **kw)
        naive = measure_naive_rps(32, 48, "float64", **kw)
        assert ceiling > 0 and coalesced > 0 and naive > 0
        assert coalesced <= ceiling * 1.25  # noise allowance
        assert coalesced > naive


class TestRunLoadtest:
    def test_tiny_run_against_live_server(self):
        srv = TransposeServer(
            ServeConfig(port=0, workers=1, queue_size=256, max_wait_ms=0.5)
        ).start()
        try:
            host, port = srv.address
            report = run_loadtest(
                f"{host}:{port}",
                rate=200.0,
                duration_s=0.4,
                shapes=[ShapeMix(16, 12, 1.0)],
                dtype="float64",
                tiles=2,
                connections=4,
                seed=1,
                reference=False,
            )
        finally:
            srv.shutdown(timeout=10)
        assert report.completed > 0
        assert report.errors == 0
        assert report.verify_failures == 0
        # verify_every defaults to 1: every 200 is byte-checked, not just
        # the first per shape — post-warm-up corruption must be caught.
        assert report.verified == report.completed
        assert report.achieved_rps > 0
        assert report.tiles == 2
        assert report.latencies_ms["p99"] >= report.latencies_ms["p50"] > 0

    def test_verify_sampling_every_nth(self):
        srv = TransposeServer(
            ServeConfig(port=0, workers=1, queue_size=256, max_wait_ms=0.5)
        ).start()
        try:
            host, port = srv.address
            report = run_loadtest(
                f"{host}:{port}",
                rate=200.0,
                duration_s=0.3,
                shapes=[ShapeMix(16, 12, 1.0)],
                dtype="float64",
                tiles=1,
                connections=2,
                seed=2,
                reference=False,
                verify_every=3,
            )
        finally:
            srv.shutdown(timeout=10)
        assert report.completed > 0
        assert report.verify_failures == 0
        # Every 3rd response per shape sampled (the first always included).
        assert 0 < report.verified <= report.completed // 3 + 1

    def test_tiles_validation(self):
        with pytest.raises(ValueError, match="tiles"):
            run_loadtest("127.0.0.1:1", tiles=0, reference=False)


class TestPerShapeAndWorst:
    def test_per_shape_percentiles_and_worst_request(self):
        srv = TransposeServer(
            ServeConfig(port=0, workers=1, queue_size=256, max_wait_ms=0.5)
        ).start()
        try:
            host, port = srv.address
            report = run_loadtest(
                f"{host}:{port}",
                rate=300.0,
                duration_s=0.4,
                shapes=[ShapeMix(16, 12, 0.5), ShapeMix(8, 24, 0.5)],
                dtype="float64",
                tiles=1,
                connections=4,
                seed=7,
                reference=False,
            )
        finally:
            srv.shutdown(timeout=10)
        assert report.completed > 0
        # both shapes served -> both get their own percentile block
        assert set(report.per_shape_latencies_ms) == {"16x12", "8x24"}
        for pct in report.per_shape_latencies_ms.values():
            assert pct["p99"] >= pct["p50"] > 0
        # the worst request is named by its deterministic trace id
        worst = report.worst_request
        assert worst["trace_id"].startswith("lt-7-")
        assert worst["shape"] in ("16x12", "8x24")
        assert worst["latency_ms"] == pytest.approx(
            report.latencies_ms["max"], rel=1e-6
        )
        text = format_report(report)
        assert "shape" in text and "worst" in text
        assert worst["trace_id"] in text
        d = report.as_dict()
        assert d["worst_request"] == worst
        assert set(d["per_shape_latencies_ms"]) == {"16x12", "8x24"}

    def test_interim_reporting_emits_progress_lines(self):
        srv = TransposeServer(
            ServeConfig(port=0, workers=1, queue_size=256, max_wait_ms=0.5)
        ).start()
        lines = []
        try:
            host, port = srv.address
            run_loadtest(
                f"{host}:{port}",
                rate=150.0,
                duration_s=0.6,
                shapes=[ShapeMix(8, 6, 1.0)],
                dtype="float64",
                tiles=1,
                connections=2,
                seed=3,
                reference=False,
                interim_every_s=0.1,
                interim_sink=lines.append,
            )
        finally:
            srv.shutdown(timeout=10)
        assert lines, "no interim progress lines were emitted"
        assert all("completed=" in line and "p99=" in line for line in lines)

    def test_interim_disabled_by_default(self):
        srv = TransposeServer(
            ServeConfig(port=0, workers=1, queue_size=64, max_wait_ms=0.5)
        ).start()
        lines = []
        try:
            host, port = srv.address
            run_loadtest(
                f"{host}:{port}", rate=100.0, duration_s=0.2,
                shapes=[ShapeMix(8, 6, 1.0)], dtype="float64", tiles=1,
                connections=2, seed=4, reference=False,
                interim_sink=lines.append,
            )
        finally:
            srv.shutdown(timeout=10)
        assert lines == []  # sink unused while interim_every_s == 0
