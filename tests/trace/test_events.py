"""Structured event log: ring bounds, JSONL sink, counters, disabled path."""

from __future__ import annotations

import json

import pytest

from repro.trace.events import DEFAULT_CAPACITY, EventLog, to_jsonl


class TestEmit:
    def test_disabled_emit_is_a_no_op(self):
        log = EventLog(enabled=False)
        log.emit("admit", trace_id="t1", depth=3)
        assert len(log) == 0
        assert log.stats()["emitted"] == 0

    def test_records_carry_ts_kind_trace_id_and_fields(self):
        log = EventLog(enabled=True)
        log.emit("dispatch", trace_id="t1", mode="batch", requests=4)
        (rec,) = log.snapshot()
        assert rec["kind"] == "dispatch"
        assert rec["trace_id"] == "t1"
        assert rec["mode"] == "batch"
        assert rec["requests"] == 4
        assert rec["ts"] > 0

    def test_trace_id_is_keyword_required(self):
        log = EventLog(enabled=True)
        with pytest.raises(TypeError):
            log.emit("admit", "t1")  # positional trace_id is a lint trap

    def test_ring_bounds_and_drop_counting(self):
        log = EventLog(enabled=True, capacity=4)
        for i in range(10):
            log.emit("admit", trace_id=f"t{i}")
        assert len(log) == 4
        stats = log.stats()
        assert stats["emitted"] == 10
        assert stats["dropped"] == 6
        # oldest evicted first
        assert [r["trace_id"] for r in log.snapshot()] == \
            ["t6", "t7", "t8", "t9"]

    def test_drain_empties_reset_clears_counters(self):
        log = EventLog(enabled=True, capacity=2)
        for i in range(3):
            log.emit("admit", trace_id=str(i))
        assert len(log.drain()) == 2
        assert len(log) == 0
        assert log.stats()["dropped"] == 1
        log.reset()
        stats = log.stats()
        assert stats["emitted"] == 0 and stats["dropped"] == 0
        assert stats["enabled"] is True  # reset does not flip the gate

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            EventLog(capacity=0)
        assert EventLog().capacity == DEFAULT_CAPACITY


class TestJsonlSink:
    def test_sink_streams_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(enabled=True, path=str(path))
        log.emit("admit", trace_id="a", depth=1)
        log.emit("reject", trace_id="b", reason="full")
        log.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        recs = [json.loads(line) for line in lines]
        assert recs[0]["kind"] == "admit"
        assert recs[1]["reason"] == "full"

    def test_sink_error_counts_and_never_raises(self, tmp_path):
        log = EventLog(enabled=True, path=str(tmp_path))  # a directory
        log.emit("admit", trace_id="a")
        assert log.stats()["sink_errors"] == 1
        assert len(log) == 1  # ring still recorded the event

    def test_non_serializable_fields_stringified(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        log = EventLog(enabled=True, path=str(path))
        log.emit("evict", trace_id="", key=object())
        log.close()
        json.loads(path.read_text())  # default=str keeps the line valid


class TestToJsonl:
    def test_round_trips(self):
        recs = [{"kind": "admit", "trace_id": "x", "ts": 1.0}]
        out = to_jsonl(recs)
        assert out.endswith("\n")
        assert json.loads(out.strip()) == recs[0]

    def test_empty_is_empty(self):
        assert to_jsonl([]) == ""
