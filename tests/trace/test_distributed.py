"""Cross-process tracing: worker span capture, splice into the parent ring,
per-process Chrome lanes, and crash-tolerant splicing.

These tests run real worker processes (the mp backend and the serving
process host), so they assert the properties that matter end to end: one
trace_id spanning at least two OS pids, worker spans parented under the
dispatching span, and a worker crash leaving the spliced tree anchored."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.parallel.mp import MpTranspose, ProcessWorkerHost
from repro.parallel.shm import owned_segments
from repro.serve.batcher import ShapeBatcher
from repro.serve.queue import Request, RequestQueue
from repro.serve.workers import WorkerPool
from repro.trace import spans
from repro.trace.export import (
    to_chrome_trace,
    to_request_tree,
    validate_chrome_trace,
)
from repro.trace.spans import TraceContext, tracer


@pytest.fixture
def traced():
    """Enable the process-wide tracer for one test, clean before and after."""
    tracer.reset()
    spans.enable()
    yield tracer
    spans.disable()
    tracer.reset()


def _ids(recs):
    return {r.span_id for r in recs}


class TestMpBackendTracing:
    def test_worker_chunk_spans_splice_under_pass_spans(self, traced):
        buf = np.arange(24 * 18, dtype=np.float64)
        with tracer.activate(TraceContext("mp-req-1")):
            with MpTranspose(2) as mp:
                mp.transpose_inplace(buf, 24, 18)
        recs = tracer.snapshot()
        chunks = [r for r in recs if r.name == "worker.chunk"]
        passes = {r.span_id: r for r in recs if r.name.startswith("pass.")}
        assert chunks, "no worker.chunk spans came back over the wire"
        parent_pid = os.getpid()
        assert all(c.pid != parent_pid for c in chunks)
        assert all(c.parent_id in passes for c in chunks)
        # every chunk names its pass and carries the request's trace_id
        for c in chunks:
            assert c.attrs["stage"] == passes[c.parent_id].name[len("pass."):]
            assert c.trace_id == "mp-req-1"
        # at least two distinct processes participated in the one trace
        assert len({r.pid for r in recs if r.trace_id == "mp-req-1"}) >= 2

    def test_chrome_export_grows_per_process_lanes(self, traced):
        buf = np.arange(20 * 15, dtype=np.float64)
        with MpTranspose(2) as mp:
            mp.transpose_inplace(buf, 20, 15)
        doc = to_chrome_trace(tracer.snapshot())
        counts = validate_chrome_trace(doc)
        assert counts["pids"] >= 2
        names = {
            e["args"]["name"] for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert "repro" in names
        assert any(n.startswith("repro-worker-") for n in names)

    def test_untraced_run_ships_no_span_payload(self):
        assert not tracer.enabled
        buf = np.arange(12 * 10, dtype=np.float64)
        with MpTranspose(1) as mp:
            mp.transpose_inplace(buf, 12, 10)
        assert len(tracer) == 0


class TestProcessServingTracing:
    def _serve_one(self, host, trace_id, m=16, n=12):
        q = RequestQueue(maxsize=64)
        b = ShapeBatcher(q, max_batch=8, max_wait_s=0.001)
        pool = WorkerPool(b, 1, poll_s=0.01, mode="process", host=host)
        r = Request(np.arange(m * n, dtype=np.float64), m, n,
                    trace_id=trace_id)
        q.submit(r)
        with pool:
            out = r.wait(timeout=60)
        expected = np.ascontiguousarray(
            np.arange(m * n, dtype=np.float64).reshape(m, n).T
        ).reshape(-1)
        np.testing.assert_array_equal(out, expected)
        return r

    def test_one_trace_id_spans_two_processes(self, traced):
        host = ProcessWorkerHost(1)
        try:
            self._serve_one(host, "dist-req-1")
        finally:
            host.shutdown()
        recs = [r for r in tracer.snapshot() if r.trace_id == "dist-req-1"]
        pids = {r.pid for r in recs}
        assert len(pids) >= 2, f"trace stayed in one process: {pids}"
        names = {r.name for r in recs}
        assert "serve.group" in names
        assert "serve.execute.process" in names
        assert "worker.group" in names  # spliced from the worker process
        execute = next(r for r in recs if r.name == "serve.execute.process")
        wgroup = next(r for r in recs if r.name == "worker.group")
        assert wgroup.parent_id == execute.span_id
        assert wgroup.pid != execute.pid
        # the request tree renders as one connected multi-process tree
        tree = to_request_tree(tracer.snapshot(), "dist-req-1")
        assert "2 process(es)" in tree or "3 process(es)" in tree
        assert "worker.group" in tree

    def test_killed_worker_leaves_splice_anchored(self, traced, tmp_path):
        """A worker dying mid-batch must not corrupt the trace: the retry's
        spans splice normally and no foreign span dangles."""
        flag = tmp_path / "die-once"
        flag.write_text("x")
        host = ProcessWorkerHost(1, fault_flag=str(flag))
        try:
            self._serve_one(host, "crash-req-1")
        finally:
            host.shutdown()
        recs = tracer.snapshot()
        local_pid = os.getpid()
        ids = _ids(recs)
        foreign = [r for r in recs if r.pid != local_pid]
        assert foreign, "retry produced no worker spans"
        # every spliced span's parent resolves inside the ring (splice
        # re-anchors worker roots onto the local dispatch span)
        assert all(f.parent_id in ids for f in foreign)
        assert all(f.trace_id == "crash-req-1" for f in foreign)
        assert owned_segments() == []
