"""The ``repro trace`` and ``repro profile`` CLI commands."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.trace import spans
from repro.trace.export import validate_chrome_trace


@pytest.fixture(autouse=True)
def _clean_global_tracer():
    was_enabled = spans.tracer.enabled
    spans.tracer.reset()
    yield
    spans.tracer.reset()
    spans.tracer.enabled = was_enabled


class TestTraceCommand:
    def test_chrome_export_has_pass_worker_and_cache_records(self, tmp_path):
        out = tmp_path / "trace.json"
        assert main([
            "trace", "--shape", "64x96", "--threads", "2",
            "--repeats", "2", "--out", str(out),
        ]) == 0
        doc = json.loads(out.read_text())
        validate_chrome_trace(doc)
        events = doc["traceEvents"]
        names = {e["name"] for e in events}
        # one pass.* span per decomposition pass of the cached plan path
        assert any(n.startswith("pass.") for n in names)
        assert "op.transpose_inplace" in names
        # plan-cache events: first call misses, repeats hit
        assert "cache.miss" in names and "cache.hit" in names
        # parallel worker chunks land on at least two distinct lanes
        worker_tids = {
            e["tid"] for e in events if e["name"] == "worker.chunk"
        }
        assert len(worker_tids) >= 2

    def test_stdout_chrome_export(self, capsys):
        assert main(["trace", "--shape", "16x24", "--repeats", "1"]) == 0
        doc = json.loads(capsys.readouterr().out)
        validate_chrome_trace(doc)

    def test_tree_format(self, capsys):
        assert main([
            "trace", "--shape", "16x24", "--format", "tree", "--repeats", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "thread MainThread" in out
        assert "op.transpose_inplace" in out

    def test_prometheus_format(self, capsys):
        assert main([
            "trace", "--shape", "16x24", "--format", "prometheus",
            "--repeats", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "repro_latency_seconds_bucket" in out

    def test_rejects_bad_shape(self, capsys):
        assert main(["trace", "--shape", "banana"]) == 1
        assert "error" in capsys.readouterr().out


class TestProfileCommand:
    def test_table_output(self, capsys):
        assert main([
            "profile", "--shape", "32x48", "--repeats", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "(memcpy ceiling," in out
        assert "backend=" in out
        assert "32x48" in out

    def test_json_output_reports_positive_bandwidth(self, capsys):
        assert main([
            "profile", "--shape", "32x48", "--repeats", "1", "--json",
        ]) == 0
        profiles = json.loads(capsys.readouterr().out)
        assert profiles[0]["m"] == 32
        assert profiles[0]["memcpy_gbps"] > 0
        assert all(p["gbps"] > 0 for p in profiles[0]["passes"])

    def test_rejects_bad_shape(self, capsys):
        assert main(["profile", "--shape", "x"]) == 1
        assert "error" in capsys.readouterr().out


class TestTraceInspection:
    def test_mp_backend_export_grows_process_lanes(self, tmp_path):
        out = tmp_path / "trace-mp.json"
        assert main([
            "trace", "--shape", "24x18", "--threads", "2",
            "--backend", "mp", "--out", str(out),
        ]) == 0
        doc = json.loads(out.read_text())
        counts = validate_chrome_trace(doc)
        assert counts["pids"] >= 2
        chunk_pids = {
            e["pid"] for e in doc["traceEvents"]
            if e["name"] == "worker.chunk"
        }
        assert chunk_pids, "mp run produced no worker.chunk spans"

    def test_request_tree_from_exported_file(self, tmp_path, capsys):
        # build a tiny exported trace with a known trace_id
        from repro.trace.export import to_chrome_trace
        from repro.trace.spans import TraceContext, Tracer

        tr = Tracer(enabled=True)
        with tr.activate(TraceContext("req-42")):
            with tr.span("serve.request", request=1):
                with tr.span("serve.execute.batch"):
                    pass
        path = tmp_path / "exported.json"
        path.write_text(json.dumps(to_chrome_trace(tr.snapshot())))
        capsys.readouterr()
        assert main([
            "trace", "--input", str(path), "--request", "req-42",
        ]) == 0
        out = capsys.readouterr().out
        assert "trace req-42: 2 spans" in out
        assert "serve.request" in out
        assert "serve.execute.batch" in out

    def test_input_without_request_dumps_whole_tree(self, tmp_path, capsys):
        from repro.trace.export import to_chrome_trace
        from repro.trace.spans import Tracer

        tr = Tracer(enabled=True)
        with tr.span("op.x"):
            pass
        path = tmp_path / "exported.json"
        path.write_text(json.dumps(to_chrome_trace(tr.snapshot())))
        capsys.readouterr()
        assert main(["trace", "--input", str(path)]) == 0
        assert "op.x" in capsys.readouterr().out

    def test_request_without_input_errors(self, capsys):
        assert main(["trace", "--request", "abc"]) == 1
        assert "--input" in capsys.readouterr().out
