"""Exporters: Chrome-trace schema and validation, Prometheus text format
with cumulative buckets, and the human-readable tree."""

from __future__ import annotations

import json
import threading

import pytest

from repro.runtime.metrics import MetricsRegistry
from repro.trace.export import (
    to_chrome_trace,
    to_prometheus,
    to_tree,
    validate_chrome_trace,
    validate_prometheus_text,
)
from repro.trace.spans import Tracer


def _traced_workload() -> list:
    """A small two-thread workload: nested spans, an event, a worker span."""
    tr = Tracer(enabled=True)
    with tr.span("op.transpose_inplace", m=4, n=6):
        with tr.span("pass.row_shuffle", bytes=192):
            pass
        tr.event("cache.hit", m=4, n=6)
    t = threading.Thread(
        target=lambda: tr.span("worker.chunk", stage="row_shuffle").__enter__().__exit__()
    )
    t.start()
    t.join()
    return tr.snapshot()


class TestChromeTrace:
    def test_document_validates_and_is_json_serializable(self):
        doc = to_chrome_trace(_traced_workload(), pid=1234)
        counts = validate_chrome_trace(doc)
        assert counts["X"] == 3
        assert counts["i"] == 1
        # one thread_name metadata event per lane + one process_name event
        assert counts["M"] == 3
        json.dumps(doc)  # must not raise

    def test_timestamps_rebase_to_zero_in_microseconds(self):
        recs = _traced_workload()
        doc = to_chrome_trace(recs)
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert min(e["ts"] for e in xs) == pytest.approx(0.0, abs=1e-6)
        outer = next(e for e in xs if e["name"] == "op.transpose_inplace")
        rec = next(r for r in recs if r.name == "op.transpose_inplace")
        assert outer["dur"] == pytest.approx(rec.duration_s * 1e6)

    def test_lanes_follow_thread_ids(self):
        doc = to_chrome_trace(_traced_workload())
        worker = next(
            e for e in doc["traceEvents"] if e["name"] == "worker.chunk"
        )
        main = next(
            e for e in doc["traceEvents"] if e["name"] == "pass.row_shuffle"
        )
        assert worker["tid"] != main["tid"]
        meta = {
            e["tid"]: e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M"
        }
        assert meta[main["tid"]] == "MainThread"

    def test_category_comes_from_name_prefix(self):
        doc = to_chrome_trace(_traced_workload())
        cats = {e["name"]: e["cat"] for e in doc["traceEvents"] if "cat" in e}
        assert cats["pass.row_shuffle"] == "pass"
        assert cats["op.transpose_inplace"] == "op"
        assert cats["cache.hit"] == "cache"

    def test_attrs_become_args(self):
        doc = to_chrome_trace(_traced_workload())
        ev = next(
            e for e in doc["traceEvents"] if e["name"] == "pass.row_shuffle"
        )
        # user attrs plus span identity for from_chrome_trace round-trips
        assert ev["args"]["bytes"] == 192
        assert {"span_id", "parent_id"} <= set(ev["args"])


class TestChromeValidation:
    def test_rejects_non_dict_and_empty_documents(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace([])
        with pytest.raises(ValueError, match="non-empty"):
            validate_chrome_trace({"traceEvents": []})

    def test_rejects_missing_required_fields(self):
        with pytest.raises(ValueError, match="lacks 'ph'"):
            validate_chrome_trace(
                {"traceEvents": [{"name": "x", "pid": 1, "tid": 1}]}
            )

    def test_rejects_complete_event_without_duration(self):
        ev = {"name": "x", "ph": "X", "pid": 1, "tid": 1, "ts": 0.0}
        with pytest.raises(ValueError, match="'ts' and 'dur'"):
            validate_chrome_trace({"traceEvents": [ev]})

    def test_rejects_negative_duration(self):
        ev = {"name": "x", "ph": "X", "pid": 1, "tid": 1, "ts": 0.0, "dur": -1}
        with pytest.raises(ValueError, match="negative"):
            validate_chrome_trace({"traceEvents": [ev]})

    def test_rejects_unknown_phase_and_span_free_traces(self):
        ev = {"name": "x", "ph": "Q", "pid": 1, "tid": 1}
        with pytest.raises(ValueError, match="unexpected phase"):
            validate_chrome_trace({"traceEvents": [ev]})
        inst = {"name": "x", "ph": "i", "pid": 1, "tid": 1, "ts": 0.0}
        with pytest.raises(ValueError, match="no complete"):
            validate_chrome_trace({"traceEvents": [inst]})


class TestPrometheus:
    def _snapshot(self) -> dict:
        reg = MetricsRegistry()
        reg.inc("bytes_moved", 1024)
        reg.record_call("transpose_inplace", 0.002)
        reg.record_call("transpose_inplace", 0.004)
        snap = reg.snapshot()
        snap["plan_cache"] = {"hits": 3, "misses": 1, "enabled": True}
        return snap

    def test_counters_render_as_total_families(self):
        text = to_prometheus(self._snapshot())
        assert "# TYPE repro_bytes_moved_total counter" in text
        assert "repro_bytes_moved_total 1024" in text
        assert "repro_transpose_inplace_calls_total 2" in text

    def test_histogram_buckets_are_cumulative_and_end_at_inf(self):
        text = to_prometheus(self._snapshot())
        bucket_lines = [
            ln for ln in text.splitlines()
            if ln.startswith("repro_latency_seconds_bucket")
        ]
        counts = [int(ln.rsplit(" ", 1)[1]) for ln in bucket_lines]
        assert counts == sorted(counts), "bucket counts must be cumulative"
        assert counts[-1] == 2
        assert 'le="+Inf"' in bucket_lines[-1]
        assert 'op="transpose_inplace"' in bucket_lines[0]
        assert "repro_latency_seconds_count" in text
        assert "repro_latency_seconds_sum" in text

    def test_plan_cache_stats_render_as_gauges(self):
        text = to_prometheus(self._snapshot())
        assert "# TYPE repro_plan_cache_hits gauge" in text
        assert "repro_plan_cache_hits 3" in text
        assert "repro_plan_cache_enabled 1" in text

    def test_metric_names_are_sanitized(self):
        reg = MetricsRegistry()
        reg.inc("plan.pass.gather_cols", 7)
        text = to_prometheus(reg.snapshot())
        assert "repro_plan_pass_gather_cols_total 7" in text

    def test_empty_snapshot_renders_nothing(self):
        assert to_prometheus(MetricsRegistry().snapshot()) == "\n"

    def test_gauges_render_as_gauge_families(self):
        reg = MetricsRegistry()
        reg.set_gauge("serve.queue_depth", 7)
        text = to_prometheus(reg.snapshot())
        assert "# TYPE repro_serve_queue_depth gauge" in text
        assert "repro_serve_queue_depth 7.0" in text

    def test_value_histograms_render_as_own_families(self):
        # Unlike latencies (one shared family labelled by op), each value
        # histogram keeps its own family — its bounds are not seconds.
        reg = MetricsRegistry()
        for size in (1, 2, 4, 4, 9):
            reg.observe_value("serve.batch_size", size, (1, 2, 4, 8))
        text = to_prometheus(reg.snapshot())
        assert "# TYPE repro_serve_batch_size histogram" in text
        bucket_lines = [
            ln for ln in text.splitlines()
            if ln.startswith("repro_serve_batch_size_bucket")
        ]
        counts = [int(ln.rsplit(" ", 1)[1]) for ln in bucket_lines]
        assert counts == sorted(counts)
        assert counts[-1] == 5
        assert 'le="+Inf"' in bucket_lines[-1]
        assert "repro_serve_batch_size_count 5" in text


class TestPrometheusValidation:
    def _text(self) -> str:
        reg = MetricsRegistry()
        reg.inc("serve.completed", 12)
        reg.set_gauge("serve.queue_depth", 3)
        reg.observe("serve.e2e", 0.004)
        reg.observe("serve.e2e", 0.009)
        reg.observe_value("serve.batch_size", 2, (1, 2, 4, 8))
        return to_prometheus(reg.snapshot())

    def test_accepts_exporter_output(self):
        stats = validate_prometheus_text(self._text())
        assert stats["families"]["counter"] == 1
        assert stats["families"]["gauge"] == 1
        assert stats["families"]["histogram"] == 2
        assert stats["samples"] > 10

    def test_rejects_missing_metric_name(self):
        with pytest.raises(ValueError, match="metric name"):
            validate_prometheus_text("  42\n")

    def test_rejects_bad_sample_value(self):
        with pytest.raises(ValueError, match="bad sample value"):
            validate_prometheus_text("repro_x not_a_number\n")

    def test_rejects_malformed_type_comment(self):
        with pytest.raises(ValueError, match="malformed TYPE"):
            validate_prometheus_text("# TYPE repro_x\n")
        with pytest.raises(ValueError, match="unknown metric type"):
            validate_prometheus_text("# TYPE repro_x tachyon\n")

    def test_rejects_duplicate_type(self):
        text = "# TYPE repro_x counter\n# TYPE repro_x counter\n"
        with pytest.raises(ValueError, match="duplicate TYPE"):
            validate_prometheus_text(text)

    def test_rejects_non_cumulative_histogram(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="1"} 5\n'
            'repro_h_bucket{le="+Inf"} 3\n'
        )
        with pytest.raises(ValueError, match="not cumulative"):
            validate_prometheus_text(text)

    def test_rejects_histogram_without_inf_bucket(self):
        text = "# TYPE repro_h histogram\n" 'repro_h_bucket{le="1"} 5\n'
        with pytest.raises(ValueError, match=r"\+Inf"):
            validate_prometheus_text(text)

    def test_rejects_count_bucket_disagreement(self):
        text = (
            "# TYPE repro_h histogram\n"
            'repro_h_bucket{le="+Inf"} 3\n'
            "repro_h_count 4\n"
        )
        with pytest.raises(ValueError, match="_count"):
            validate_prometheus_text(text)


class TestTree:
    def test_tree_shows_nesting_threads_and_events(self):
        text = to_tree(_traced_workload())
        assert "thread MainThread" in text
        assert "op.transpose_inplace" in text
        # child pass indented deeper than its parent op
        op_line = next(
            ln for ln in text.splitlines() if "op.transpose_inplace" in ln
        )
        pass_line = next(
            ln for ln in text.splitlines() if "pass.row_shuffle" in ln
        )
        indent = len(op_line) - len(op_line.lstrip())
        assert len(pass_line) - len(pass_line.lstrip()) > indent
        assert "* cache.hit" in text
        assert "worker.chunk" in text

    def test_empty_input_is_handled(self):
        assert to_tree([]) == "(no spans recorded)\n"
