"""Core tracer semantics: disabled no-op path, ring-buffer bounds, nesting
and per-thread parenting, instant events, and the global enable helpers."""

from __future__ import annotations

import threading

import pytest

from repro.trace import spans
from repro.trace.spans import _NOOP, SpanRecord, Tracer


@pytest.fixture(autouse=True)
def _clean_global_tracer():
    was_enabled = spans.tracer.enabled
    spans.tracer.reset()
    yield
    spans.tracer.reset()
    spans.tracer.enabled = was_enabled


class TestDisabledPath:
    def test_span_returns_the_shared_noop_singleton(self):
        tr = Tracer(enabled=False)
        assert tr.span("pass.x", m=4, n=6) is _NOOP
        assert tr.span("other") is _NOOP

    def test_disabled_span_and_event_record_nothing(self):
        tr = Tracer(enabled=False)
        with tr.span("pass.x"):
            pass
        tr.event("cache.hit")
        assert len(tr) == 0
        assert tr.recorded == 0

    def test_noop_span_exposes_zero_duration(self):
        tr = Tracer(enabled=False)
        with tr.span("pass.x") as sp:
            pass
        assert sp.duration_s == 0.0

    def test_noop_span_does_not_swallow_exceptions(self):
        tr = Tracer(enabled=False)
        with pytest.raises(RuntimeError):
            with tr.span("pass.x"):
                raise RuntimeError("boom")


class TestRecording:
    def test_span_records_name_attrs_and_positive_duration(self):
        tr = Tracer(enabled=True)
        with tr.span("pass.row_shuffle", m=3, n=4, bytes=96):
            pass
        (rec,) = tr.snapshot()
        assert rec.name == "pass.row_shuffle"
        assert rec.attrs == {"m": 3, "n": 4, "bytes": 96}
        assert rec.duration_s >= 0.0
        assert not rec.is_event
        assert rec.tid == threading.get_ident()

    def test_live_span_records_even_when_body_raises(self):
        tr = Tracer(enabled=True)
        with pytest.raises(ValueError):
            with tr.span("pass.x"):
                raise ValueError("boom")
        assert len(tr) == 1

    def test_event_is_zero_width(self):
        tr = Tracer(enabled=True)
        tr.event("cache.hit", m=3, n=4)
        (rec,) = tr.snapshot()
        assert rec.is_event and rec.t0 == rec.t1
        assert rec.attrs == {"m": 3, "n": 4}

    def test_span_ids_are_unique_and_monotonic(self):
        tr = Tracer(enabled=True)
        for _ in range(10):
            with tr.span("s"):
                pass
        ids = [r.span_id for r in tr.snapshot()]
        assert ids == sorted(ids) and len(set(ids)) == 10

    def test_as_dict_round_trips_fields(self):
        tr = Tracer(enabled=True)
        with tr.span("op.x", k=1):
            pass
        d = tr.snapshot()[0].as_dict()
        assert d["name"] == "op.x"
        assert d["attrs"] == {"k": 1}
        assert d["duration_s"] == pytest.approx(d["t1"] - d["t0"])


class TestNesting:
    def test_nested_spans_parent_correctly(self):
        tr = Tracer(enabled=True)
        with tr.span("op.outer"):
            with tr.span("pass.inner"):
                pass
            tr.event("cache.hit")
        recs = {r.name: r for r in tr.snapshot()}
        outer = recs["op.outer"]
        assert recs["pass.inner"].parent_id == outer.span_id
        assert recs["cache.hit"].parent_id == outer.span_id
        assert outer.parent_id == 0

    def test_siblings_share_a_parent(self):
        tr = Tracer(enabled=True)
        with tr.span("op.outer"):
            with tr.span("pass.a"):
                pass
            with tr.span("pass.b"):
                pass
        recs = {r.name: r for r in tr.snapshot()}
        assert recs["pass.a"].parent_id == recs["pass.b"].parent_id

    def test_threads_never_parent_each_other(self):
        """Spans opened on a worker thread must be roots there, even while a
        span is open on the main thread (per-thread stacks)."""
        tr = Tracer(enabled=True)
        # The barrier keeps all four workers alive at once, so the OS cannot
        # recycle a finished worker's thread ident for the next one.
        barrier = threading.Barrier(4)

        def worker() -> None:
            with tr.span("worker.chunk", stage="row_shuffle"):
                barrier.wait(timeout=10)

        with tr.span("op.parallel"):
            threads = [threading.Thread(target=worker) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        recs = tr.snapshot()
        chunks = [r for r in recs if r.name == "worker.chunk"]
        assert len(chunks) == 4
        assert all(c.parent_id == 0 for c in chunks)
        assert len({c.tid for c in chunks}) == 4

    def test_concurrent_recording_is_lossless_within_capacity(self):
        tr = Tracer(enabled=True, capacity=10_000)

        def worker() -> None:
            for _ in range(250):
                with tr.span("s"):
                    pass

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(tr) == 2000
        assert tr.dropped == 0
        ids = [r.span_id for r in tr.snapshot()]
        assert len(set(ids)) == 2000


class TestRingBuffer:
    def test_wraparound_keeps_newest_and_counts_dropped(self):
        tr = Tracer(enabled=True, capacity=8)
        for i in range(20):
            with tr.span(f"s{i}"):
                pass
        recs = tr.snapshot()
        assert len(recs) == 8
        assert [r.name for r in recs] == [f"s{i}" for i in range(12, 20)]
        assert tr.dropped == 12
        assert tr.recorded == 20

    def test_reset_clears_records_and_counters_not_flag(self):
        tr = Tracer(enabled=True, capacity=4)
        for i in range(6):
            with tr.span("s"):
                pass
        tr.reset()
        assert len(tr) == 0 and tr.dropped == 0 and tr.recorded == 0
        assert tr.enabled is True

    def test_drain_empties_the_buffer(self):
        tr = Tracer(enabled=True)
        with tr.span("s"):
            pass
        out = tr.drain()
        assert len(out) == 1 and len(tr) == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)


class TestGlobalHelpers:
    def test_enable_disable_toggle_the_shared_tracer(self):
        spans.enable()
        assert spans.is_enabled()
        with spans.tracer.span("s"):
            pass
        spans.disable()
        assert not spans.is_enabled()
        with spans.tracer.span("s2"):
            pass
        names = [r.name for r in spans.tracer.snapshot()]
        assert names == ["s"]

    def test_traced_decorator_wraps_buf_m_n_entry_points(self):
        calls = []

        @spans.traced("baseline.fake")
        def fake(buf, m, n, *, flag=False):
            calls.append((m, n, flag))
            return "ret"

        class Buf:
            nbytes = 128

        spans.disable()
        assert fake(Buf(), 3, 4, flag=True) == "ret"
        assert len(spans.tracer) == 0
        spans.enable()
        assert fake(Buf(), 3, 4) == "ret"
        (rec,) = spans.tracer.snapshot()
        assert rec.name == "baseline.fake"
        assert rec.attrs == {"m": 3, "n": 4, "bytes": 256}
        assert calls == [(3, 4, True), (3, 4, False)]

    def test_module_reset_helper(self):
        spans.enable()
        with spans.tracer.span("s"):
            pass
        spans.reset()
        assert len(spans.tracer) == 0
