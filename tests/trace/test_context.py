"""Distributed-tracing primitives: TraceContext activation, trace_id
stamping, cross-process splice, wire round-trips, and the disabled-path
overhead contract."""

from __future__ import annotations

import os
import threading
from time import perf_counter

import pytest

from repro.trace.spans import (
    SpanRecord,
    TraceContext,
    Tracer,
    new_trace_id,
    spans_to_wire,
)


class TestTraceContext:
    def test_wire_round_trip(self):
        ctx = TraceContext("abc123", parent_id=42)
        again = TraceContext.from_wire(ctx.as_wire())
        assert again.trace_id == "abc123"
        assert again.parent_id == 42

    def test_new_trace_id_shape_and_uniqueness(self):
        ids = {new_trace_id() for _ in range(64)}
        assert len(ids) == 64
        assert all(len(i) == 16 for i in ids)
        assert all(int(i, 16) >= 0 for i in ids)


class TestActivation:
    def test_spans_and_events_stamped_with_trace_id(self):
        tr = Tracer(enabled=True)
        with tr.activate(TraceContext("req-1")):
            with tr.span("serve.request"):
                tr.event("cache.hit")
        recs = tr.snapshot()
        assert {r.trace_id for r in recs} == {"req-1"}

    def test_root_span_parents_to_context_parent_id(self):
        tr = Tracer(enabled=True)
        with tr.activate(TraceContext("req-1", parent_id=777)):
            with tr.span("serve.group"):
                with tr.span("serve.execute.batch"):
                    pass
        group = next(r for r in tr.snapshot() if r.name == "serve.group")
        inner = next(
            r for r in tr.snapshot() if r.name == "serve.execute.batch"
        )
        assert group.parent_id == 777
        assert inner.parent_id == group.span_id  # stack wins over ctx

    def test_contexts_nest_and_restore(self):
        tr = Tracer(enabled=True)
        with tr.activate(TraceContext("outer")):
            assert tr.current_trace_id() == "outer"
            with tr.activate(TraceContext("inner")):
                assert tr.current_trace_id() == "inner"
            assert tr.current_trace_id() == "outer"
        assert tr.current_trace_id() == ""
        assert tr.current_context() is None

    def test_context_is_thread_local(self):
        tr = Tracer(enabled=True)
        seen = {}

        def worker():
            seen["other"] = tr.current_trace_id()

        with tr.activate(TraceContext("mine")):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert seen["other"] == ""

    def test_activate_none_deactivates_for_scope(self):
        tr = Tracer(enabled=True)
        with tr.activate(TraceContext("req")):
            with tr.activate(None):
                assert tr.current_trace_id() == ""
            assert tr.current_trace_id() == "req"


class TestSplice:
    def _foreign_ring(self, trace_id="req-9"):
        """Spans recorded by a simulated worker-process tracer."""
        child = Tracer(enabled=True)
        with child.activate(TraceContext(trace_id, parent_id=12345)):
            with child.span("worker.group", batch=3):
                with child.span("pass.row_shuffle"):
                    pass
        wire = spans_to_wire(child.drain())
        for w in wire:  # simulate a different OS process
            w["pid"] = 99999
        return wire

    def test_ids_remapped_and_internal_links_preserved(self):
        parent = Tracer(enabled=True)
        with parent.span("serve.execute.process") as sp:
            local_id = sp.span_id
        n = parent.splice(self._foreign_ring(), parent_id=local_id,
                          trace_id="req-9")
        assert n == 2
        recs = parent.snapshot()
        group = next(r for r in recs if r.name == "worker.group")
        inner = next(r for r in recs if r.name == "pass.row_shuffle")
        # the worker root re-parents onto the local span; the internal
        # child link follows the remapped id, not the foreign one
        assert group.parent_id == local_id
        assert inner.parent_id == group.span_id
        assert group.pid == 99999 and inner.pid == 99999
        ids = {r.span_id for r in recs}
        assert len(ids) == len(recs)  # no collisions with local spans

    def test_trace_id_inherited_when_missing(self):
        parent = Tracer(enabled=True)
        wire = self._foreign_ring()
        for w in wire:
            w["trace_id"] = ""
        parent.splice(wire, parent_id=0, trace_id="adopted")
        assert {r.trace_id for r in parent.snapshot()} == {"adopted"}

    def test_malformed_wire_drops_batch_whole(self):
        parent = Tracer(enabled=True)
        assert parent.splice([{"no_span_id": 1}]) == 0
        assert parent.splice(["not a dict"]) == 0
        assert parent.splice([]) == 0
        assert len(parent) == 0

    def test_wire_survives_partial_records(self):
        """A truncated ring (worker died mid-flight) still splices: every
        present record lands, roots parent to the given local span."""
        parent = Tracer(enabled=True)
        wire = [w for w in self._foreign_ring()
                if w["name"] != "worker.group"]  # root lost, child kept
        with parent.span("serve.execute.process") as sp:
            pass
        assert parent.splice(wire, parent_id=sp.span_id) == len(wire)
        orphan = next(
            r for r in parent.snapshot() if r.name == "pass.row_shuffle"
        )
        assert orphan.parent_id == sp.span_id  # re-anchored, not dangling


class TestRecordCarriesProcess:
    def test_records_stamp_current_pid(self):
        tr = Tracer(enabled=True)
        with tr.span("op.x"):
            pass
        assert tr.snapshot()[0].pid == os.getpid()

    def test_as_dict_round_trips_through_splice(self):
        rec = SpanRecord(7, 3, "worker.chunk", 1.0, 2.0, 11, "w0",
                         {"stage": "row_shuffle"}, trace_id="t", pid=4242)
        parent = Tracer(enabled=True)
        parent.splice([rec.as_dict()], parent_id=0)
        back = parent.snapshot()[0]
        assert back.name == "worker.chunk"
        assert back.attrs == {"stage": "row_shuffle"}
        assert back.trace_id == "t"
        assert back.pid == 4242
        assert back.tid == 11


class TestDisabledOverhead:
    def test_disabled_span_path_stays_cheap(self):
        """The disabled path must be within an order of magnitude of a bare
        loop — one attribute read and one branch, no allocation.  The bound
        is deliberately generous (20x) to stay CI-proof; the regression it
        guards against (building attr dicts or _LiveSpan objects while
        disabled) costs 100x+."""
        tr = Tracer(enabled=False)
        n = 20_000

        def bare():
            t0 = perf_counter()
            for _ in range(n):
                pass
            return perf_counter() - t0

        def guarded():
            t0 = perf_counter()
            for _ in range(n):
                if tr.enabled:
                    with tr.span("x", a=1, b=2):
                        pass
            return perf_counter() - t0

        base = min(bare() for _ in range(5))
        cost = min(guarded() for _ in range(5))
        assert cost < max(base * 20, 5e-3)
        assert len(tr) == 0

    def test_activate_while_disabled_records_nothing(self):
        tr = Tracer(enabled=False)
        with tr.activate(TraceContext("req")):
            with tr.span("serve.request"):
                tr.event("cache.hit")
        assert len(tr) == 0
        # context still visible for event-log stamping even when spans off
        with tr.activate(TraceContext("req-2")):
            assert tr.current_trace_id() == "req-2"
