"""Bandwidth profiler: span/bytes aggregation, memcpy normalization, the
profile_shape driver, and the traced-vs-untraced differential (tracing must
observe, not perturb)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.trace import spans
from repro.trace.profile import (
    aggregate_passes,
    format_profile_table,
    measure_memcpy_gbps,
    profile_shape,
    profile_shapes,
)
from repro.trace.spans import SpanRecord, Tracer


@pytest.fixture(autouse=True)
def _clean_global_tracer():
    was_enabled = spans.tracer.enabled
    spans.tracer.reset()
    yield
    spans.tracer.reset()
    spans.tracer.enabled = was_enabled


def _rec(name: str, dur: float, nbytes: int | None, sid: int) -> SpanRecord:
    attrs = {} if nbytes is None else {"bytes": nbytes}
    return SpanRecord(sid, 0, name, 1.0, 1.0 + dur, 1, "MainThread", attrs)


class TestAggregatePasses:
    def test_joins_durations_with_bytes(self):
        recs = [
            _rec("pass.a", 0.001, 1_000_000, 1),
            _rec("pass.a", 0.003, 1_000_000, 2),
            _rec("pass.b", 0.002, 2_000_000, 3),
        ]
        out = aggregate_passes(recs)
        assert [p.name for p in out] == ["pass.a", "pass.b"]
        a = out[0]
        assert a.calls == 2
        assert a.seconds == pytest.approx(0.004)
        assert a.bytes == 2_000_000
        assert a.gbps == pytest.approx(2_000_000 / 0.004 / 1e9)

    def test_memcpy_fraction_normalizes(self):
        recs = [_rec("pass.a", 0.001, 10_000_000, 1)]
        (p,) = aggregate_passes(recs, memcpy_gbps=20.0)
        assert p.memcpy_frac == pytest.approx(p.gbps / 20.0)

    def test_skips_events_unannotated_spans_and_other_prefixes(self):
        ev = SpanRecord(1, 0, "pass.a", 1.0, 1.0, 1, "t", {"bytes": 8})
        recs = [
            ev,  # zero-width event
            _rec("pass.b", 0.001, None, 2),  # no bytes attr
            _rec("op.c", 0.001, 64, 3),  # wrong prefix
            _rec("pass.d", 0.001, 64, 4),
        ]
        out = aggregate_passes(recs)
        assert [p.name for p in out] == ["pass.d"]

    def test_prefix_filter_is_configurable(self):
        recs = [
            _rec("worker.chunk", 0.001, 64, 1),
            _rec("pass.a", 0.001, 64, 2),
        ]
        out = aggregate_passes(recs, prefixes=("worker.",))
        assert [p.name for p in out] == ["worker.chunk"]


class TestMemcpyCeiling:
    def test_measures_a_positive_bandwidth(self):
        gbps = measure_memcpy_gbps(1 << 20, repeats=2)
        assert gbps > 0.0


class TestProfileShape:
    def test_sequential_profile_reports_each_pass_with_positive_gbps(self):
        prof = profile_shape(64, 96, repeats=2)
        assert prof.m == 64 and prof.n == 96 and prof.threads == 1
        assert prof.memcpy_gbps > 0
        names = [p.name for p in prof.passes]
        assert names, "expected at least one pass profile"
        assert all(n.startswith("pass.") for n in names)
        for p in prof.passes:
            assert p.calls == 2
            assert p.gbps > 0
            assert p.memcpy_frac > 0

    def test_parallel_profile_traces_worker_passes(self):
        prof = profile_shape(64, 96, repeats=1, threads=2)
        assert prof.threads == 2
        assert any(p.name.startswith("pass.") for p in prof.passes)

    def test_profiling_restores_tracer_state_and_records(self):
        spans.enable()
        with spans.tracer.span("op.pre_existing"):
            pass
        profile_shape(16, 24, repeats=1)
        assert spans.tracer.enabled is True
        names = [r.name for r in spans.tracer.snapshot()]
        assert names == ["op.pre_existing"]
        spans.disable()
        profile_shape(16, 24, repeats=1)
        assert spans.tracer.enabled is False

    def test_transpose_remains_correct_under_profiling(self):
        """Differential: tracing observes the passes, it must not change
        the permutation the passes compute."""
        m, n = 48, 36
        expected = np.arange(m * n, dtype=np.float64).reshape(m, n).T.ravel()

        from repro.core.transpose import transpose_inplace

        spans.enable()
        traced_buf = np.arange(m * n, dtype=np.float64)
        transpose_inplace(traced_buf, m, n)
        spans.disable()
        untraced_buf = np.arange(m * n, dtype=np.float64)
        transpose_inplace(untraced_buf, m, n)

        np.testing.assert_array_equal(traced_buf, expected)
        np.testing.assert_array_equal(untraced_buf, expected)

    def test_parallel_transpose_identical_traced_and_untraced(self):
        from repro.parallel import parallel_transpose_inplace

        m, n = 40, 56
        expected = np.arange(m * n, dtype=np.float64).reshape(m, n).T.ravel()
        spans.enable()
        traced_buf = parallel_transpose_inplace(
            np.arange(m * n, dtype=np.float64), m, n, n_threads=3
        )
        spans.disable()
        untraced_buf = parallel_transpose_inplace(
            np.arange(m * n, dtype=np.float64), m, n, n_threads=3
        )
        np.testing.assert_array_equal(traced_buf, expected)
        np.testing.assert_array_equal(untraced_buf, expected)


class TestFormatting:
    def test_table_lists_memcpy_ceiling_and_passes(self):
        profs = profile_shapes([(32, 48)], repeats=1)
        text = format_profile_table(profs)
        # The ceiling row names the backend that actually executed.
        assert "(memcpy ceiling, numpy)" in text
        assert "32x48" in text
        assert "GB/s" in text
        assert any("pass." in ln for ln in text.splitlines())

    def test_profiles_serialize_to_dicts(self):
        (prof,) = profile_shapes([(16, 24)], repeats=1)
        d = prof.as_dict()
        assert d["m"] == 16 and d["n"] == 24
        assert all("gbps" in p for p in d["passes"])
