"""Tests for the ASTA hybrid layout (Sung et al. [7] comparison)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aos import aos_to_soa_flat
from repro.aos.asta import (
    aos_to_asta,
    asta_index,
    asta_to_aos,
    asta_to_soa,
    soa_to_asta,
)
from repro.gpusim import TransactionAnalyzer

params = st.tuples(
    st.integers(1, 8),    # tiles
    st.integers(1, 24),   # struct size
    st.sampled_from([4, 8, 16, 32]),  # tile height
).map(lambda t: (t[0] * t[2], t[1], t[2]))  # (n_structs, S, T)


class TestAstaLayout:
    @given(params)
    @settings(max_examples=60, deadline=None)
    def test_asta_index_matches_conversion(self, p):
        n, s, t = p
        buf = np.arange(n * s, dtype=np.int64)  # AoS: struct i = [i*s, ...)
        aos_to_asta(buf, n, s, t)
        for struct in range(0, n, max(1, n // 5)):
            for f in range(s):
                assert buf[asta_index(struct, f, s, t)] == struct * s + f

    @given(params)
    @settings(max_examples=60, deadline=None)
    def test_roundtrip(self, p):
        n, s, t = p
        orig = np.arange(n * s, dtype=np.int64)
        buf = orig.copy()
        aos_to_asta(buf, n, s, t)
        asta_to_aos(buf, n, s, t)
        np.testing.assert_array_equal(buf, orig)

    @given(params)
    @settings(max_examples=60, deadline=None)
    def test_field_runs_are_tile_contiguous(self, p):
        """ASTA's point: a warp-sized tile's field values are contiguous."""
        n, s, t = p
        buf = np.arange(n * s, dtype=np.int64)
        aos_to_asta(buf, n, s, t)
        for block in range(n // t):
            for f in range(s):
                run = buf[(block * s + f) * t : (block * s + f + 1) * t]
                expected = (block * t + np.arange(t)) * s + f
                np.testing.assert_array_equal(run, expected)

    @given(params)
    @settings(max_examples=40, deadline=None)
    def test_asta_to_soa_completes_the_transpose(self, p):
        """AoS -> ASTA -> SoA equals the direct AoS -> SoA conversion."""
        n, s, t = p
        direct = np.arange(n * s, dtype=np.int64)
        aos_to_soa_flat(direct, n, s)
        staged = np.arange(n * s, dtype=np.int64)
        aos_to_asta(staged, n, s, t)
        asta_to_soa(staged, n, s, t)
        np.testing.assert_array_equal(staged, direct)

    @given(params)
    @settings(max_examples=40, deadline=None)
    def test_soa_to_asta_roundtrip(self, p):
        n, s, t = p
        orig = np.arange(n * s, dtype=np.float64)
        buf = orig.copy()
        aos_to_asta(buf, n, s, t)
        snapshot = buf.copy()
        asta_to_soa(buf, n, s, t)
        soa_to_asta(buf, n, s, t)
        np.testing.assert_array_equal(buf, snapshot)

    def test_validates(self):
        with pytest.raises(ValueError):
            aos_to_asta(np.zeros(10), 5, 2, tile=4)  # 4 does not divide 5
        with pytest.raises(ValueError):
            aos_to_asta(np.zeros(10), 4, 2, tile=0)
        with pytest.raises(ValueError):
            aos_to_asta(np.zeros(9), 4, 2, tile=4)


class TestAstaCoalescing:
    def test_warp_field_access_is_one_transaction(self):
        """Reading field f of 32 consecutive structs: 32 scattered words in
        AoS, one contiguous line in ASTA (tile = warp size) — the layout's
        whole purpose."""
        s, t = 8, 32
        an = TransactionAnalyzer(128)
        f = 3
        structs = np.arange(32)
        aos_addrs = (structs * s + f) * 4
        asta_addrs = asta_index(structs, f, s, t) * 4
        assert an.count_warp(aos_addrs, 4) == 8
        assert an.count_warp(asta_addrs, 4) == 1

    def test_conversion_cost_is_local(self):
        """AoS -> ASTA only permutes within tiles: every element stays
        inside its t*s-element block (the cheapness Sung et al. trade
        addressing simplicity for)."""
        n, s, t = 96, 6, 32
        buf = np.arange(n * s, dtype=np.int64)
        aos_to_asta(buf, n, s, t)
        block = t * s
        for b in range(n // t):
            segment = buf[b * block : (b + 1) * block]
            assert segment.min() >= b * block
            assert segment.max() < (b + 1) * block
