"""Tests for AoS/SoA conversion and the skinny transposes."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aos import (
    AosLayout,
    aos_to_soa,
    aos_to_soa_flat,
    field_matrix,
    skinny_transpose,
    soa_to_aos,
    soa_to_aos_flat,
    struct_view,
)
from repro.aos.skinny import skinny_c2r, skinny_r2c
from repro.core import c2r_transpose, r2c_transpose

skinny_shapes = st.tuples(st.integers(1, 31), st.integers(1, 600))


class TestSkinnyKernels:
    @given(skinny_shapes)
    @settings(max_examples=80, deadline=None)
    def test_skinny_c2r_matches_general(self, shape):
        m, n = shape
        A = np.arange(m * n, dtype=np.int64)
        a, b = A.copy(), A.copy()
        skinny_c2r(a, m, n)
        c2r_transpose(b, m, n)
        np.testing.assert_array_equal(a, b)

    @given(skinny_shapes)
    @settings(max_examples=80, deadline=None)
    def test_skinny_r2c_matches_general(self, shape):
        m, n = shape
        A = np.arange(m * n, dtype=np.int64)
        a, b = A.copy(), A.copy()
        skinny_r2c(a, m, n)
        r2c_transpose(b, m, n)
        np.testing.assert_array_equal(a, b)

    @given(skinny_shapes)
    @settings(max_examples=60, deadline=None)
    def test_skinny_transpose_both_orientations(self, shape):
        s, big = shape
        for m, n in [(s, big), (big, s)]:
            A = np.arange(m * n, dtype=np.float64).reshape(m, n)
            buf = A.ravel().copy()
            skinny_transpose(buf, m, n)
            np.testing.assert_array_equal(buf.reshape(n, m), A.T)

    def test_validates_buffer(self):
        with pytest.raises(ValueError):
            skinny_c2r(np.zeros(5), 2, 3)
        with pytest.raises(ValueError):
            skinny_r2c(np.zeros(5), 2, 3)


class TestFlatConversion:
    @given(st.integers(1, 24), st.integers(1, 500))
    @settings(max_examples=60, deadline=None)
    def test_aos_to_soa_semantics(self, s, n):
        # struct i holds values [i*s .. i*s + s)
        buf = np.arange(n * s, dtype=np.float64)
        soa = aos_to_soa_flat(buf, n, s)
        assert soa.shape == (s, n)
        for k in range(s):
            np.testing.assert_array_equal(soa[k], np.arange(n) * s + k)

    @given(st.integers(1, 24), st.integers(1, 500))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip(self, s, n):
        orig = np.arange(n * s, dtype=np.int64)
        buf = orig.copy()
        aos_to_soa_flat(buf, n, s)
        aos2 = soa_to_aos_flat(buf, n, s)
        np.testing.assert_array_equal(buf, orig)
        assert aos2.shape == (n, s)

    def test_in_place_no_copy(self):
        buf = np.arange(12.0)
        soa = aos_to_soa_flat(buf, 4, 3)
        assert np.shares_memory(soa, buf)

    def test_validates(self):
        with pytest.raises(ValueError):
            aos_to_soa_flat(np.zeros(7), 2, 3)
        with pytest.raises(ValueError):
            soa_to_aos_flat(np.zeros(7), 2, 3)


class TestMatrixConversion:
    @given(st.integers(1, 16), st.integers(1, 300))
    @settings(max_examples=40, deadline=None)
    def test_2d_matrix_api(self, s, n):
        A = np.arange(n * s, dtype=np.float32).reshape(n, s)
        expected = A.copy().T
        soa = aos_to_soa(A)
        np.testing.assert_array_equal(soa, expected)
        assert np.shares_memory(soa, A)
        back = soa_to_aos(soa)
        np.testing.assert_array_equal(back, expected.T)

    def test_rejects_noncontiguous(self):
        A = np.zeros((8, 8))[:, ::2]
        with pytest.raises(ValueError):
            aos_to_soa(A)
        F = np.asfortranarray(np.zeros((4, 4)))[:, :3]
        with pytest.raises(ValueError):
            soa_to_aos(F)

    def test_rejects_1d_plain(self):
        with pytest.raises(ValueError):
            aos_to_soa(np.zeros(8))


class TestStructuredArrays:
    def _particles(self, n=200):
        dt = np.dtype([("x", "f8"), ("y", "f8"), ("z", "f8")])
        arr = np.zeros(n, dtype=dt)
        arr["x"] = np.arange(n)
        arr["y"] = np.arange(n) + 0.5
        arr["z"] = -np.arange(n, dtype=np.float64)
        return arr

    def test_field_matrix_is_view(self):
        p = self._particles()
        mat = field_matrix(p)
        assert mat.shape == (200, 3)
        assert np.shares_memory(mat, p)
        np.testing.assert_array_equal(mat[:, 0], np.arange(200))

    def test_struct_roundtrip(self):
        p = self._particles()
        mat = field_matrix(p).copy()
        back = struct_view(mat, ["x", "y", "z"])
        np.testing.assert_array_equal(back["y"], p["y"])

    def test_aos_to_soa_on_struct_array(self):
        p = self._particles(64)
        xs, ys = p["x"].copy(), p["y"].copy()
        soa = aos_to_soa(p)
        np.testing.assert_array_equal(soa[0], xs)
        np.testing.assert_array_equal(soa[1], ys)
        assert np.shares_memory(soa, p)

    def test_heterogeneous_fields_rejected(self):
        dt = np.dtype([("a", "f8"), ("b", "i4")])
        with pytest.raises(ValueError):
            field_matrix(np.zeros(4, dtype=dt))

    def test_layout_descriptors(self):
        p = self._particles(10)
        lay = AosLayout.of_struct_array(p)
        assert (lay.n_structs, lay.struct_size) == (10, 3)
        assert lay.nbytes == 10 * 3 * 8
        lay2 = AosLayout.of_matrix(np.zeros((5, 4)))
        assert lay2.n_elements == 20
        with pytest.raises(ValueError):
            AosLayout(0, 3, np.dtype("f8"))

    def test_struct_view_validations(self):
        with pytest.raises(ValueError):
            struct_view(np.zeros((4, 3)), ["a", "b"])
        with pytest.raises(ValueError):
            struct_view(np.zeros(4), ["a"])
