"""Gate mypy on *new* errors against a committed baseline.

The repo predates its type annotations, so a plain ``mypy --strict`` run
would drown real regressions in legacy noise.  Instead CI runs mypy with
the lenient config in ``pyproject.toml`` and diffs the normalized error
set against ``tools/mypy_baseline.txt``:

* errors present in the baseline are tolerated (legacy debt),
* errors **not** in the baseline fail the job (new debt),
* baseline entries that no longer fire are reported so the baseline can
  be shrunk (run with ``--update`` to rewrite it).

Errors are normalized by stripping line/column numbers, so moving code
around does not churn the baseline — only genuinely new error messages do.

The committed baseline starts as the ``<bootstrap>`` sentinel: in that
mode the script records what mypy reports and always exits 0, so the gate
arms itself on the first CI run that commits a real baseline
(``python tools/check_mypy_baseline.py --update``).
"""

from __future__ import annotations

import argparse
import re
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
BASELINE = REPO / "tools" / "mypy_baseline.txt"
BOOTSTRAP_SENTINEL = "<bootstrap>"

#: ``path:line: error: message  [code]`` -> ``path: error: message  [code]``
_LOCATION_RE = re.compile(r"^(?P<path>[^:]+):\d+(?::\d+)?: (?P<rest>.*)$")

MYPY_TARGETS = ["src/repro/core", "src/repro/analysis"]


def normalize(line: str) -> str | None:
    """One mypy output line -> location-free key, or None for non-errors."""
    line = line.strip()
    if not line or ": error:" not in line:
        return None
    match = _LOCATION_RE.match(line)
    if match is None:
        return line
    return f"{match.group('path')}: {match.group('rest')}"


def run_mypy() -> tuple[list[str], str]:
    """Run mypy over the gated targets; returns (normalized errors, raw)."""
    cmd = [sys.executable, "-m", "mypy", *MYPY_TARGETS]
    proc = subprocess.run(
        cmd, cwd=REPO, capture_output=True, text=True, check=False
    )
    if "No module named mypy" in proc.stderr:
        raise SystemExit(
            "mypy is not installed; the typecheck job must `pip install mypy` "
            "before running this gate"
        )
    if proc.returncode not in (0, 1):
        # 2 = usage/config/crash: never mask it as "no new errors".
        sys.stderr.write(proc.stdout + proc.stderr)
        raise SystemExit(f"mypy failed to run (exit {proc.returncode})")
    errors = []
    for line in proc.stdout.splitlines():
        key = normalize(line)
        if key is not None:
            errors.append(key)
    return sorted(set(errors)), proc.stdout


def load_baseline() -> set[str] | None:
    """The committed baseline, or None while the bootstrap sentinel stands."""
    if not BASELINE.exists():
        return None
    lines = [
        ln.strip()
        for ln in BASELINE.read_text(encoding="utf-8").splitlines()
        if ln.strip() and not ln.strip().startswith("#")
    ]
    if lines == [BOOTSTRAP_SENTINEL]:
        return None
    return set(lines)


def write_baseline(errors: list[str]) -> None:
    header = (
        "# mypy baseline: normalized legacy errors tolerated by CI.\n"
        "# Regenerate with: python tools/check_mypy_baseline.py --update\n"
    )
    body = "\n".join(errors)
    BASELINE.write_text(header + body + ("\n" if body else ""), encoding="utf-8")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline with the current mypy output and exit 0",
    )
    args = parser.parse_args(argv)

    errors, raw = run_mypy()

    if args.update:
        write_baseline(errors)
        print(f"baseline updated: {len(errors)} tolerated error(s)")
        return 0

    baseline = load_baseline()
    if baseline is None:
        print(
            f"mypy baseline is in bootstrap mode ({len(errors)} current "
            "error(s) observed, not gated).\n"
            "Arm the gate with: python tools/check_mypy_baseline.py --update"
        )
        return 0

    new = [e for e in errors if e not in baseline]
    fixed = sorted(baseline - set(errors))
    if fixed:
        print(f"{len(fixed)} baseline entr(ies) no longer fire — consider "
              "shrinking the baseline with --update:")
        for e in fixed:
            print(f"  stale: {e}")
    if new:
        print(f"{len(new)} NEW mypy error(s) not in the baseline:")
        for e in new:
            print(f"  {e}")
        print("\nFull mypy output:\n" + raw)
        return 1
    print(f"mypy clean against baseline ({len(errors)} tolerated, 0 new)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
