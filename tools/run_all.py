#!/usr/bin/env python3
"""Run the complete reproduction: tests, benchmarks, examples, selftest.

Collates everything a reviewer needs into one command:

    python tools/run_all.py [--skip-tests] [--skip-benches] [--skip-examples]

Writes a summary to stdout and leaves the per-figure reports in
``benchmarks/results/``.
"""

from __future__ import annotations

import argparse
import subprocess
import sys
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def run(label: str, cmd: list[str]) -> tuple[str, bool, float]:
    print(f"\n=== {label}: {' '.join(cmd)}")
    t0 = time.perf_counter()
    proc = subprocess.run(cmd, cwd=ROOT)
    dt = time.perf_counter() - t0
    ok = proc.returncode == 0
    print(f"=== {label}: {'OK' if ok else 'FAILED'} ({dt:.1f}s)")
    return label, ok, dt


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--skip-tests", action="store_true")
    ap.add_argument("--skip-benches", action="store_true")
    ap.add_argument("--skip-examples", action="store_true")
    args = ap.parse_args()

    results: list[tuple[str, bool, float]] = []
    py = sys.executable

    if not args.skip_tests:
        results.append(run("tests", [py, "-m", "pytest", "tests/", "-q"]))
    if not args.skip_benches:
        results.append(
            run(
                "benchmarks",
                [py, "-m", "pytest", "benchmarks/", "--benchmark-only", "-q"],
            )
        )
    if not args.skip_examples:
        for ex in sorted((ROOT / "examples").glob("*.py")):
            results.append(run(f"example:{ex.name}", [py, str(ex)]))
    results.append(run("selftest", [py, "-m", "repro", "selftest"]))

    print("\n" + "=" * 60)
    print("SUMMARY")
    print("=" * 60)
    failed = 0
    for label, ok, dt in results:
        print(f"  {'PASS' if ok else 'FAIL'}  {label:<40} {dt:7.1f}s")
        failed += not ok
    reports = sorted((ROOT / "benchmarks" / "results").glob("*.txt"))
    if reports:
        print(f"\nper-figure reports ({len(reports)}):")
        for r in reports:
            print(f"  benchmarks/results/{r.name}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
